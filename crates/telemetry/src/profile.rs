//! Scoped wall-clock timers around simulator hot paths.
//!
//! Sections nest: a scope's elapsed time counts toward its own *total* and
//! is subtracted from the enclosing scope's *self* time, so the report
//! attributes every nanosecond exactly once. Install with [`install`],
//! guard hot paths with [`scope`], and print [`Profiler::report`] at exit.
//!
//! When no profiler is installed, [`scope`] is a single thread-local `Cell`
//! read and the guard's `Drop` does nothing — cheap enough to leave in the
//! machine tick loop.
//!
//! ```
//! use parrot_telemetry::profile;
//!
//! profile::install(profile::Profiler::new());
//! {
//!     let _outer = profile::scope("machine.run");
//!     let _inner = profile::scope("opt.pass"); // nests: counted once
//! }
//! let p = profile::take().unwrap();
//! let (calls, _total, _own) = p.section("machine.run").unwrap();
//! assert_eq!(calls, 1);
//! assert!(p.report().contains("machine.run"));
//! ```

use std::cell::{Cell, RefCell};
use std::time::{Duration, Instant};

#[derive(Clone, Debug, Default)]
struct Section {
    name: &'static str,
    calls: u64,
    total: Duration,
    own: Duration,
}

#[derive(Debug)]
struct Frame {
    section: usize,
    started: Instant,
    child: Duration,
}

/// Wall-clock section profiler.
#[derive(Debug, Default)]
pub struct Profiler {
    sections: Vec<Section>,
    stack: Vec<Frame>,
    epoch: Option<Instant>,
    /// Per-sweep-worker section totals, accumulated by
    /// [`Profiler::absorb_worker`] and reported as attribution sub-tables.
    workers: Vec<(u32, Vec<Section>)>,
}

fn merge_sections(into: &mut Vec<Section>, from: &[Section]) {
    for s in from {
        if let Some(t) = into.iter_mut().find(|t| t.name == s.name) {
            t.calls += s.calls;
            t.total += s.total;
            t.own += s.own;
        } else {
            into.push(s.clone());
        }
    }
}

impl Profiler {
    /// A profiler whose wall-clock epoch starts now.
    pub fn new() -> Profiler {
        Profiler {
            sections: Vec::new(),
            stack: Vec::new(),
            epoch: Some(Instant::now()),
            workers: Vec::new(),
        }
    }

    /// Fold a sweep shard's profiler into this one: its section totals add
    /// into the aggregate table and into the per-worker attribution bucket
    /// for `worker` (self/total time stays exactly attributed — shard
    /// scopes closed before collection, so no time is double-counted).
    pub fn absorb_worker(&mut self, worker: u32, other: Profiler) {
        merge_sections(&mut self.sections, &other.sections);
        if let Some((_, bucket)) = self.workers.iter_mut().find(|(w, _)| *w == worker) {
            merge_sections(bucket, &other.sections);
        } else {
            let mut bucket = Vec::new();
            merge_sections(&mut bucket, &other.sections);
            self.workers.push((worker, bucket));
        }
        for (w, shard_bucket) in other.workers {
            if let Some((_, bucket)) = self.workers.iter_mut().find(|(sw, _)| *sw == w) {
                merge_sections(bucket, &shard_bucket);
            } else {
                self.workers.push((w, shard_bucket));
            }
        }
    }

    fn section_index(&mut self, name: &'static str) -> usize {
        if let Some(i) = self.sections.iter().position(|s| s.name == name) {
            i
        } else {
            self.sections.push(Section {
                name,
                ..Section::default()
            });
            self.sections.len() - 1
        }
    }

    fn begin(&mut self, name: &'static str) {
        let section = self.section_index(name);
        self.stack.push(Frame {
            section,
            started: Instant::now(),
            child: Duration::ZERO,
        });
    }

    fn end(&mut self) {
        let Some(frame) = self.stack.pop() else {
            return;
        };
        let elapsed = frame.started.elapsed();
        let s = &mut self.sections[frame.section];
        s.calls += 1;
        s.total += elapsed;
        s.own += elapsed.saturating_sub(frame.child);
        if let Some(parent) = self.stack.last_mut() {
            parent.child += elapsed;
        }
    }

    /// Render the per-section table (sorted by self time, descending).
    pub fn report(&self) -> String {
        let wall = self.epoch.map(|e| e.elapsed()).unwrap_or_default();
        let mut rows = self.sections.clone();
        rows.sort_by_key(|s| std::cmp::Reverse(s.own));
        let mut out = String::new();
        out.push_str("profile (wall-clock)\n");
        out.push_str(&format!(
            "{:<28} {:>10} {:>12} {:>12} {:>7}\n",
            "section", "calls", "total ms", "self ms", "self %"
        ));
        let wall_s = wall.as_secs_f64().max(1e-12);
        for s in &rows {
            out.push_str(&format!(
                "{:<28} {:>10} {:>12.3} {:>12.3} {:>6.1}%\n",
                s.name,
                s.calls,
                s.total.as_secs_f64() * 1e3,
                s.own.as_secs_f64() * 1e3,
                100.0 * s.own.as_secs_f64() / wall_s
            ));
        }
        out.push_str(&format!("wall total: {:.3} ms\n", wall.as_secs_f64() * 1e3));
        if !self.workers.is_empty() {
            let mut workers = self.workers.clone();
            workers.sort_by_key(|(w, _)| *w);
            out.push_str("\nper-worker attribution\n");
            for (w, sections) in &workers {
                let busy: Duration = sections.iter().map(|s| s.own).sum();
                out.push_str(&format!(
                    "worker {w} — busy {:.3} ms\n",
                    busy.as_secs_f64() * 1e3
                ));
                let mut rows = sections.clone();
                rows.sort_by_key(|s| std::cmp::Reverse(s.own));
                for s in &rows {
                    out.push_str(&format!(
                        "  {:<26} {:>10} {:>12.3} {:>12.3}\n",
                        s.name,
                        s.calls,
                        s.total.as_secs_f64() * 1e3,
                        s.own.as_secs_f64() * 1e3
                    ));
                }
            }
        }
        out
    }

    /// (calls, total, self) for `name`, if the section was entered.
    pub fn section(&self, name: &str) -> Option<(u64, Duration, Duration)> {
        self.sections
            .iter()
            .find(|s| s.name == name)
            .map(|s| (s.calls, s.total, s.own))
    }

    /// (calls, total, self) for `name` as attributed to sweep `worker`, if
    /// that worker entered the section.
    pub fn worker_section(&self, worker: u32, name: &str) -> Option<(u64, Duration, Duration)> {
        self.workers
            .iter()
            .find(|(w, _)| *w == worker)
            .and_then(|(_, ss)| ss.iter().find(|s| s.name == name))
            .map(|s| (s.calls, s.total, s.own))
    }
}

thread_local! {
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static PROFILER: RefCell<Option<Profiler>> = const { RefCell::new(None) };
}

/// Install a profiler as this thread's sink (returning any previous one).
pub fn install(p: Profiler) -> Option<Profiler> {
    ACTIVE.with(|a| a.set(true));
    PROFILER.with(|cell| cell.borrow_mut().replace(p))
}

/// Remove and return the installed profiler.
pub fn take() -> Option<Profiler> {
    ACTIVE.with(|a| a.set(false));
    PROFILER.with(|cell| cell.borrow_mut().take())
}

/// Is a profiler installed on this thread?
#[inline]
pub fn active() -> bool {
    ACTIVE.with(|a| a.get())
}

/// RAII guard closing its section on drop. Obtain via [`scope`].
#[must_use = "the scope ends when the guard is dropped"]
pub struct Scope {
    live: bool,
}

impl Drop for Scope {
    fn drop(&mut self) {
        if self.live {
            PROFILER.with(|cell| {
                if let Some(p) = cell.borrow_mut().as_mut() {
                    p.end();
                }
            });
        }
    }
}

/// Open a named timing scope; it closes when the returned guard drops.
#[inline]
pub fn scope(name: &'static str) -> Scope {
    if !active() {
        return Scope { live: false };
    }
    PROFILER.with(|cell| {
        if let Some(p) = cell.borrow_mut().as_mut() {
            p.begin(name);
        }
    });
    Scope { live: true }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_attributes_self_and_total() {
        install(Profiler::new());
        {
            let _outer = scope("outer");
            std::thread::sleep(Duration::from_millis(2));
            {
                let _inner = scope("inner");
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        let p = take().unwrap();
        let (ocalls, ototal, oself) = p.section("outer").unwrap();
        let (icalls, itotal, iself) = p.section("inner").unwrap();
        assert_eq!(ocalls, 1);
        assert_eq!(icalls, 1);
        // Outer total covers inner; outer self excludes it.
        assert!(ototal >= itotal);
        assert!(oself <= ototal - itotal + Duration::from_millis(1));
        assert!(iself <= itotal);
        let report = p.report();
        assert!(report.contains("outer"));
        assert!(report.contains("inner"));
        assert!(report.contains("self %"));
    }

    #[test]
    fn repeated_scopes_accumulate_calls() {
        install(Profiler::new());
        for _ in 0..10 {
            let _s = scope("tick");
        }
        let p = take().unwrap();
        assert_eq!(p.section("tick").unwrap().0, 10);
    }

    #[test]
    fn scope_without_profiler_is_noop() {
        assert!(!active());
        let _s = scope("nothing");
        assert!(take().is_none());
    }
}

//! Scoped wall-clock timers around simulator hot paths, plus sampled
//! cycle-loop stage attribution and flamegraph output.
//!
//! Sections nest: a scope's elapsed time counts toward its own *total* and
//! is subtracted from the enclosing scope's *self* time, so the report
//! attributes every nanosecond exactly once. Install with [`install`],
//! guard hot paths with [`scope`], and print [`Profiler::report`] at exit.
//!
//! All timing derives from one monotonic source: the profiler's epoch
//! `Instant`, with every duration kept as integer nanoseconds. Each
//! section keeps a 64-bucket log₂ histogram of scope durations, so the
//! report shows p50/p95/max per scope alongside totals (percentiles are
//! read at geometric bucket midpoints — exact to within a power of two —
//! while max is exact).
//!
//! # Cycle-loop stages
//!
//! Wrapping every pipeline stage of every simulated cycle in a full scope
//! would cost two `Instant::now` calls per stage per tick — far too much
//! for a loop that runs hundreds of millions of ticks. Instead the machine
//! calls [`cycle_tick`] once per tick, which arms the stage timers on
//! 1-in-[`STAGE_STRIDE`] ticks; [`stage`] guards are inert single-`Cell`
//! reads on unarmed ticks and real timers on armed ones. Reported stage
//! totals are estimates (sampled time × stride, marked `~` in the report);
//! per-stage histograms and max are over the sampled entries.
//!
//! # Flamegraphs
//!
//! [`Profiler::collapsed`] renders collapsed-stack text (one
//! `frame;frame;frame value` line per unique stack, values in self-
//! nanoseconds) directly consumable by `inferno` / `flamegraph.pl` /
//! speedscope. Sampled cycle-loop stages appear under a synthetic
//! `cycle-stages` root frame so their estimated time does not double-count
//! the enclosing `machine.run` scope.
//!
//! When no profiler is installed, [`scope`] is a single thread-local `Cell`
//! read and the guard's `Drop` does nothing — cheap enough to leave in the
//! machine tick loop.
//!
//! ```
//! use parrot_telemetry::profile;
//!
//! profile::install(profile::Profiler::new());
//! {
//!     let _outer = profile::scope("machine.run");
//!     let _inner = profile::scope("opt.pass"); // nests: counted once
//! }
//! let p = profile::take().unwrap();
//! let (calls, _total, _own) = p.section("machine.run").unwrap();
//! assert_eq!(calls, 1);
//! assert!(p.report().contains("machine.run"));
//! assert!(p.collapsed().contains("machine.run;opt.pass"));
//! ```

use std::cell::{Cell, RefCell};
use std::time::{Duration, Instant};

/// Stage timers are armed on 1-in-this-many calls to [`cycle_tick`].
pub const STAGE_STRIDE: u32 = 64;

/// Cycle-loop stages attributed by the sampled stage timers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Cold-path fetch: I-cache, branch prediction, decode.
    Frontend = 0,
    /// Trace-cache lookup and hot-entry arbitration.
    TraceCache = 1,
    /// Optimizer invocations from the cycle loop.
    Optimizer = 2,
    /// Out-of-order core: issue, execute, writeback, commit.
    Exec = 3,
    /// Dispatch from the fetch queue into the core.
    Dispatch = 4,
    /// Energy accounting and metrics publication.
    Accounting = 5,
}

const STAGE_COUNT: usize = 6;

impl Stage {
    /// All stages, in id order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::Frontend,
        Stage::TraceCache,
        Stage::Optimizer,
        Stage::Exec,
        Stage::Dispatch,
        Stage::Accounting,
    ];

    /// Display name (also the collapsed-stack frame name).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Frontend => "frontend",
            Stage::TraceCache => "trace-cache",
            Stage::Optimizer => "optimizer",
            Stage::Exec => "exec",
            Stage::Dispatch => "dispatch",
            Stage::Accounting => "accounting",
        }
    }
}

/// 64-bucket log₂ histogram of nanosecond durations. Bucket `b` covers
/// `[2^b, 2^(b+1))`; percentiles are read at the geometric bucket midpoint.
#[derive(Clone, Debug)]
struct LogHist {
    buckets: [u64; 64],
    count: u64,
}

impl Default for LogHist {
    fn default() -> LogHist {
        LogHist {
            buckets: [0; 64],
            count: 0,
        }
    }
}

impl LogHist {
    #[inline]
    fn record(&mut self, ns: u64) {
        let b = 63 - (ns | 1).leading_zeros() as usize;
        self.buckets[b] += 1;
        self.count += 1;
    }

    fn merge(&mut self, other: &LogHist) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
    }

    /// Nearest-rank percentile, reported at the bucket's geometric
    /// midpoint (`1.5 × 2^b`). 0 when empty.
    fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (b, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return (1u64 << b) + ((1u64 << b) >> 1);
            }
        }
        (1u64 << 63) + ((1u64 << 63) >> 1)
    }
}

#[derive(Clone, Debug, Default)]
struct Section {
    name: &'static str,
    calls: u64,
    total_ns: u64,
    own_ns: u64,
    max_ns: u64,
    hist: LogHist,
}

#[derive(Debug)]
struct Frame {
    section: usize,
    start_ns: u64,
    child_ns: u64,
}

/// Per-stage sampled timing (entries timed on armed ticks only).
#[derive(Clone, Debug, Default)]
struct StageStat {
    sampled: u64,
    ns: u64,
    max_ns: u64,
    hist: LogHist,
}

/// Wall-clock section profiler.
#[derive(Debug)]
pub struct Profiler {
    sections: Vec<Section>,
    stack: Vec<Frame>,
    /// Current stack rendered as "a;b;c", maintained incrementally.
    stack_key: String,
    /// `stack_key` length before each frame was pushed.
    key_lens: Vec<usize>,
    /// Self-nanoseconds per unique collapsed stack.
    stacks: Vec<(String, u64)>,
    epoch: Instant,
    stages: Vec<StageStat>,
    /// Per-sweep-worker section totals, accumulated by
    /// [`Profiler::absorb_worker`] and reported as attribution sub-tables.
    workers: Vec<(u32, Vec<Section>)>,
}

impl Default for Profiler {
    fn default() -> Profiler {
        Profiler::new()
    }
}

fn merge_sections(into: &mut Vec<Section>, from: &[Section]) {
    for s in from {
        if let Some(t) = into.iter_mut().find(|t| t.name == s.name) {
            t.calls += s.calls;
            t.total_ns += s.total_ns;
            t.own_ns += s.own_ns;
            t.max_ns = t.max_ns.max(s.max_ns);
            t.hist.merge(&s.hist);
        } else {
            into.push(s.clone());
        }
    }
}

fn fmt_us(ns: u64) -> String {
    format!("{:.1}", ns as f64 / 1e3)
}

impl Profiler {
    /// A profiler whose monotonic epoch starts now.
    pub fn new() -> Profiler {
        Profiler {
            sections: Vec::new(),
            stack: Vec::new(),
            stack_key: String::new(),
            key_lens: Vec::new(),
            stacks: Vec::new(),
            epoch: Instant::now(),
            stages: vec![StageStat::default(); STAGE_COUNT],
            workers: Vec::new(),
        }
    }

    /// Nanoseconds since this profiler's epoch — the single monotonic
    /// clock source every measurement derives from.
    #[inline]
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Fold a sweep shard's profiler into this one: its section totals add
    /// into the aggregate table and into the per-worker attribution bucket
    /// for `worker` (self/total time stays exactly attributed — shard
    /// scopes closed before collection, so no time is double-counted).
    /// Collapsed stacks and sampled stage stats merge into the aggregate.
    pub fn absorb_worker(&mut self, worker: u32, other: Profiler) {
        merge_sections(&mut self.sections, &other.sections);
        for (key, ns) in &other.stacks {
            if let Some((_, v)) = self.stacks.iter_mut().find(|(k, _)| k == key) {
                *v += ns;
            } else {
                self.stacks.push((key.clone(), *ns));
            }
        }
        for (mine, theirs) in self.stages.iter_mut().zip(&other.stages) {
            mine.sampled += theirs.sampled;
            mine.ns += theirs.ns;
            mine.max_ns = mine.max_ns.max(theirs.max_ns);
            mine.hist.merge(&theirs.hist);
        }
        if let Some((_, bucket)) = self.workers.iter_mut().find(|(w, _)| *w == worker) {
            merge_sections(bucket, &other.sections);
        } else {
            let mut bucket = Vec::new();
            merge_sections(&mut bucket, &other.sections);
            self.workers.push((worker, bucket));
        }
        for (w, shard_bucket) in other.workers {
            if let Some((_, bucket)) = self.workers.iter_mut().find(|(sw, _)| *sw == w) {
                merge_sections(bucket, &shard_bucket);
            } else {
                self.workers.push((w, shard_bucket));
            }
        }
    }

    fn section_index(&mut self, name: &'static str) -> usize {
        if let Some(i) = self.sections.iter().position(|s| s.name == name) {
            i
        } else {
            self.sections.push(Section {
                name,
                ..Section::default()
            });
            self.sections.len() - 1
        }
    }

    fn begin(&mut self, name: &'static str) {
        let section = self.section_index(name);
        self.key_lens.push(self.stack_key.len());
        if !self.stack_key.is_empty() {
            self.stack_key.push(';');
        }
        self.stack_key.push_str(name);
        let start_ns = self.now_ns();
        self.stack.push(Frame {
            section,
            start_ns,
            child_ns: 0,
        });
    }

    fn end(&mut self) {
        let Some(frame) = self.stack.pop() else {
            return;
        };
        let elapsed = self.now_ns().saturating_sub(frame.start_ns);
        let own = elapsed.saturating_sub(frame.child_ns);
        let s = &mut self.sections[frame.section];
        s.calls += 1;
        s.total_ns += elapsed;
        s.own_ns += own;
        s.max_ns = s.max_ns.max(elapsed);
        s.hist.record(elapsed);
        if let Some((_, v)) = self.stacks.iter_mut().find(|(k, _)| *k == self.stack_key) {
            *v += own;
        } else {
            self.stacks.push((self.stack_key.clone(), own));
        }
        let len = self.key_lens.pop().unwrap_or(0);
        self.stack_key.truncate(len);
        if let Some(parent) = self.stack.last_mut() {
            parent.child_ns += elapsed;
        }
    }

    fn record_stage(&mut self, stage: Stage, ns: u64) {
        let st = &mut self.stages[stage as usize];
        st.sampled += 1;
        st.ns += ns;
        st.max_ns = st.max_ns.max(ns);
        st.hist.record(ns);
    }

    /// Render the per-section table (sorted by self time, descending),
    /// with p50/p95/max per scope and the sampled cycle-loop stage table.
    pub fn report(&self) -> String {
        let wall_ns = self.now_ns();
        let mut rows = self.sections.clone();
        rows.sort_by_key(|s| std::cmp::Reverse(s.own_ns));
        let mut out = String::new();
        out.push_str("profile (wall-clock)\n");
        out.push_str(&format!(
            "{:<28} {:>10} {:>12} {:>12} {:>7} {:>9} {:>9} {:>9}\n",
            "section", "calls", "total ms", "self ms", "self %", "p50 us", "p95 us", "max us"
        ));
        let wall_s = (wall_ns as f64 / 1e9).max(1e-12);
        for s in &rows {
            out.push_str(&format!(
                "{:<28} {:>10} {:>12.3} {:>12.3} {:>6.1}% {:>9} {:>9} {:>9}\n",
                s.name,
                s.calls,
                s.total_ns as f64 / 1e6,
                s.own_ns as f64 / 1e6,
                100.0 * (s.own_ns as f64 / 1e9) / wall_s,
                fmt_us(s.hist.percentile(50.0)),
                fmt_us(s.hist.percentile(95.0)),
                fmt_us(s.max_ns),
            ));
        }
        out.push_str(&format!("wall total: {:.3} ms\n", wall_ns as f64 / 1e6));
        if self.stages.iter().any(|s| s.sampled > 0) {
            out.push_str(&format!(
                "\ncycle-loop stages (sampled 1-in-{STAGE_STRIDE}; totals estimated)\n"
            ));
            out.push_str(&format!(
                "{:<14} {:>10} {:>12} {:>7} {:>9} {:>9} {:>9}\n",
                "stage", "sampled", "~total ms", "share%", "p50 us", "p95 us", "max us"
            ));
            for stage in Stage::ALL {
                let st = &self.stages[stage as usize];
                if st.sampled == 0 {
                    continue;
                }
                let est_ns = st.ns.saturating_mul(u64::from(STAGE_STRIDE));
                out.push_str(&format!(
                    "{:<14} {:>10} {:>12.3} {:>6.1}% {:>9} {:>9} {:>9}\n",
                    stage.name(),
                    st.sampled,
                    est_ns as f64 / 1e6,
                    100.0 * (est_ns as f64 / 1e9) / wall_s,
                    fmt_us(st.hist.percentile(50.0)),
                    fmt_us(st.hist.percentile(95.0)),
                    fmt_us(st.max_ns),
                ));
            }
        }
        if !self.workers.is_empty() {
            let mut workers = self.workers.clone();
            workers.sort_by_key(|(w, _)| *w);
            out.push_str("\nper-worker attribution\n");
            for (w, sections) in &workers {
                let busy: u64 = sections.iter().map(|s| s.own_ns).sum();
                out.push_str(&format!("worker {w} — busy {:.3} ms\n", busy as f64 / 1e6));
                let mut rows = sections.clone();
                rows.sort_by_key(|s| std::cmp::Reverse(s.own_ns));
                for s in &rows {
                    out.push_str(&format!(
                        "  {:<26} {:>10} {:>12.3} {:>12.3}\n",
                        s.name,
                        s.calls,
                        s.total_ns as f64 / 1e6,
                        s.own_ns as f64 / 1e6
                    ));
                }
            }
        }
        out
    }

    /// Collapsed-stack text (flamegraph.pl / inferno / speedscope input):
    /// one `frame;frame value` line per unique scope stack, values in
    /// self-nanoseconds, sorted for determinism. Sampled cycle-loop stages
    /// are emitted under a synthetic `cycle-stages` root with estimated
    /// (× stride) nanoseconds.
    pub fn collapsed(&self) -> String {
        let mut lines: Vec<String> = self
            .stacks
            .iter()
            .filter(|(_, ns)| *ns > 0)
            .map(|(k, ns)| format!("{k} {ns}"))
            .collect();
        for stage in Stage::ALL {
            let st = &self.stages[stage as usize];
            if st.sampled > 0 {
                let est = st.ns.saturating_mul(u64::from(STAGE_STRIDE));
                lines.push(format!("cycle-stages;{} {est}", stage.name()));
            }
        }
        lines.sort();
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }

    /// (calls, total, self) for `name`, if the section was entered.
    pub fn section(&self, name: &str) -> Option<(u64, Duration, Duration)> {
        self.sections.iter().find(|s| s.name == name).map(|s| {
            (
                s.calls,
                Duration::from_nanos(s.total_ns),
                Duration::from_nanos(s.own_ns),
            )
        })
    }

    /// (p50, p95, max) scope duration for `name`, if entered. p50/p95 are
    /// log₂-bucket midpoints (exact within a power of two); max is exact.
    pub fn section_percentiles(&self, name: &str) -> Option<(Duration, Duration, Duration)> {
        self.sections.iter().find(|s| s.name == name).map(|s| {
            (
                Duration::from_nanos(s.hist.percentile(50.0)),
                Duration::from_nanos(s.hist.percentile(95.0)),
                Duration::from_nanos(s.max_ns),
            )
        })
    }

    /// (sampled entries, sampled time, max sampled entry) for a cycle-loop
    /// stage; `None` if the stage was never sampled. Estimated total time
    /// is `sampled time × STAGE_STRIDE`.
    pub fn stage_stats(&self, stage: Stage) -> Option<(u64, Duration, Duration)> {
        let st = &self.stages[stage as usize];
        if st.sampled == 0 {
            return None;
        }
        Some((
            st.sampled,
            Duration::from_nanos(st.ns),
            Duration::from_nanos(st.max_ns),
        ))
    }

    /// (calls, total, self) for `name` as attributed to sweep `worker`, if
    /// that worker entered the section.
    pub fn worker_section(&self, worker: u32, name: &str) -> Option<(u64, Duration, Duration)> {
        self.workers
            .iter()
            .find(|(w, _)| *w == worker)
            .and_then(|(_, ss)| ss.iter().find(|s| s.name == name))
            .map(|s| {
                (
                    s.calls,
                    Duration::from_nanos(s.total_ns),
                    Duration::from_nanos(s.own_ns),
                )
            })
    }
}

thread_local! {
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static STAGE_ARMED: Cell<bool> = const { Cell::new(false) };
    static STAGE_CTR: Cell<u32> = const { Cell::new(0) };
    static PROFILER: RefCell<Option<Profiler>> = const { RefCell::new(None) };
}

/// Install a profiler as this thread's sink (returning any previous one).
pub fn install(p: Profiler) -> Option<Profiler> {
    ACTIVE.with(|a| a.set(true));
    STAGE_CTR.with(|c| c.set(0));
    PROFILER.with(|cell| cell.borrow_mut().replace(p))
}

/// Remove and return the installed profiler.
pub fn take() -> Option<Profiler> {
    ACTIVE.with(|a| a.set(false));
    STAGE_ARMED.with(|a| a.set(false));
    PROFILER.with(|cell| cell.borrow_mut().take())
}

/// Is a profiler installed on this thread?
#[inline]
pub fn active() -> bool {
    ACTIVE.with(|a| a.get())
}

/// RAII guard closing its section on drop. Obtain via [`scope`].
#[must_use = "the scope ends when the guard is dropped"]
pub struct Scope {
    live: bool,
}

impl Drop for Scope {
    fn drop(&mut self) {
        if self.live {
            PROFILER.with(|cell| {
                if let Some(p) = cell.borrow_mut().as_mut() {
                    p.end();
                }
            });
        }
    }
}

/// Open a named timing scope; it closes when the returned guard drops.
#[inline]
pub fn scope(name: &'static str) -> Scope {
    if !active() {
        return Scope { live: false };
    }
    PROFILER.with(|cell| {
        if let Some(p) = cell.borrow_mut().as_mut() {
            p.begin(name);
        }
    });
    Scope { live: true }
}

/// Advance the stage-timer sampler by one simulated tick: arms the
/// [`stage`] guards on 1-in-[`STAGE_STRIDE`] ticks when a profiler is
/// installed. Call once per machine tick; costs two `Cell` accesses.
#[inline]
pub fn cycle_tick() {
    if !active() {
        STAGE_ARMED.with(|a| {
            if a.get() {
                a.set(false);
            }
        });
        return;
    }
    STAGE_CTR.with(|c| {
        let n = c.get();
        if n == 0 {
            STAGE_ARMED.with(|a| a.set(true));
            c.set(STAGE_STRIDE - 1);
        } else {
            STAGE_ARMED.with(|a| a.set(false));
            c.set(n - 1);
        }
    });
}

/// RAII guard attributing a cycle-loop stage. Obtain via [`stage`].
#[must_use = "the stage ends when the guard is dropped"]
pub struct StageScope {
    stage: Stage,
    start: Option<Instant>,
}

impl Drop for StageScope {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = start.elapsed().as_nanos() as u64;
            PROFILER.with(|cell| {
                if let Some(p) = cell.borrow_mut().as_mut() {
                    p.record_stage(self.stage, ns);
                }
            });
        }
    }
}

/// Time a cycle-loop stage when the sampler armed this tick (see
/// [`cycle_tick`]); a single `Cell` read otherwise.
#[inline]
pub fn stage(s: Stage) -> StageScope {
    let armed = STAGE_ARMED.with(|a| a.get());
    StageScope {
        stage: s,
        start: if armed { Some(Instant::now()) } else { None },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_attributes_self_and_total() {
        install(Profiler::new());
        {
            let _outer = scope("outer");
            std::thread::sleep(Duration::from_millis(2));
            {
                let _inner = scope("inner");
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        let p = take().unwrap();
        let (ocalls, ototal, oself) = p.section("outer").unwrap();
        let (icalls, itotal, iself) = p.section("inner").unwrap();
        assert_eq!(ocalls, 1);
        assert_eq!(icalls, 1);
        // Outer total covers inner; outer self excludes it.
        assert!(ototal >= itotal);
        assert!(oself <= ototal - itotal + Duration::from_millis(1));
        assert!(iself <= itotal);
        let report = p.report();
        assert!(report.contains("outer"));
        assert!(report.contains("inner"));
        assert!(report.contains("self %"));
        assert!(report.contains("p50 us"));
        assert!(report.contains("p95 us"));
        assert!(report.contains("max us"));
    }

    #[test]
    fn repeated_scopes_accumulate_calls() {
        install(Profiler::new());
        for _ in 0..10 {
            let _s = scope("tick");
        }
        let p = take().unwrap();
        assert_eq!(p.section("tick").unwrap().0, 10);
    }

    #[test]
    fn scope_without_profiler_is_noop() {
        assert!(!active());
        let _s = scope("nothing");
        cycle_tick();
        let _g = stage(Stage::Exec);
        assert!(take().is_none());
    }

    #[test]
    fn percentiles_bracket_scope_durations() {
        install(Profiler::new());
        for _ in 0..8 {
            let _s = scope("sleepy");
            std::thread::sleep(Duration::from_millis(1));
        }
        let p = take().unwrap();
        let (p50, p95, max) = p.section_percentiles("sleepy").unwrap();
        // 1ms sleeps land in log2 buckets near 1–4ms; midpoints are within
        // a power of two of the true duration.
        assert!(p50 >= Duration::from_micros(500), "p50 {p50:?}");
        assert!(p95 >= p50);
        assert!(max >= Duration::from_millis(1));
        assert!(max < Duration::from_secs(1));
    }

    #[test]
    fn collapsed_stacks_nest_and_sum_self_time() {
        install(Profiler::new());
        {
            let _a = scope("a");
            std::thread::sleep(Duration::from_millis(1));
            {
                let _b = scope("b");
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        {
            let _b = scope("b");
        }
        let p = take().unwrap();
        let folded = p.collapsed();
        let lines: Vec<&str> = folded.lines().collect();
        assert!(lines.iter().any(|l| l.starts_with("a ")));
        assert!(lines.iter().any(|l| l.starts_with("a;b ")));
        // Every line is "stack value".
        for l in &lines {
            let (_, v) = l.rsplit_once(' ').unwrap();
            v.parse::<u64>().unwrap();
        }
    }

    #[test]
    fn stage_sampler_arms_one_in_stride() {
        install(Profiler::new());
        let ticks = STAGE_STRIDE * 4;
        for _ in 0..ticks {
            cycle_tick();
            let _e = stage(Stage::Exec);
            std::hint::black_box(0u64);
        }
        let p = take().unwrap();
        let (sampled, total, max) = p.stage_stats(Stage::Exec).unwrap();
        assert_eq!(sampled, 4, "one armed tick per stride");
        assert!(total > Duration::ZERO);
        assert!(max >= total / 4);
        assert!(p.stage_stats(Stage::Frontend).is_none());
        let report = p.report();
        assert!(report.contains("cycle-loop stages"));
        assert!(report.contains("exec"));
        let folded = p.collapsed();
        assert!(folded.contains("cycle-stages;exec "));
    }

    #[test]
    fn absorb_worker_merges_stages_and_stacks() {
        install(Profiler::new());
        cycle_tick();
        {
            let _e = stage(Stage::Frontend);
        }
        {
            let _s = scope("work");
            std::thread::sleep(Duration::from_millis(1));
        }
        let shard = take().unwrap();

        let mut base = Profiler::new();
        base.absorb_worker(2, shard);
        assert!(base.stage_stats(Stage::Frontend).is_some());
        assert!(base.collapsed().contains("work "));
        assert_eq!(base.worker_section(2, "work").unwrap().0, 1);
    }
}

//! In-tree xorshift64* PRNG replacing `rand::SmallRng` for offline builds.
//!
//! Seeds pass through one round of splitmix64 (so seed 0 and near-equal
//! seeds produce uncorrelated streams), then the xorshift64* step generates
//! 64-bit outputs. The *stream for a given seed differs* from the old
//! `SmallRng` stream — generated programs keep the same statistical shape
//! but not the same instruction sequences; see DESIGN.md ("Determinism").
//!
//! Range methods use simple modulo reduction: the bias is < width/2^64,
//! irrelevant for workload synthesis, and the code stays obviously correct.

/// xorshift64* generator (Vigna, "An experimental exploration of
/// Marsaglia's xorshift generators, scrambled").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xorshift64Star {
    s: u64,
}

impl Xorshift64Star {
    /// Seed via one splitmix64 round; any seed (including 0) is valid.
    pub fn seed_from_u64(seed: u64) -> Xorshift64Star {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Xorshift64Star { s: z | 1 } // state must be nonzero
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.s;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.s = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw; `p` is clamped to `[0, 1]`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p.clamp(0.0, 1.0)
    }

    /// Uniform in `[lo, hi)`. Panics on an empty range.
    #[inline]
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "f64_in: empty range [{lo}, {hi})");
        lo + self.unit_f64() * (hi - lo)
    }

    /// Uniform `u64` in `[lo, hi)`. Panics on an empty range.
    #[inline]
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "u64_in: empty range [{lo}, {hi})");
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform `u32` in `[lo, hi)`.
    #[inline]
    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        self.u64_in(u64::from(lo), u64::from(hi)) as u32
    }

    /// Uniform `u8` in `[lo, hi)`.
    #[inline]
    pub fn u8_in(&mut self, lo: u8, hi: u8) -> u8 {
        self.u64_in(u64::from(lo), u64::from(hi)) as u8
    }

    /// Uniform `usize` in `[lo, hi)`.
    #[inline]
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_in(lo as u64, hi as u64) as usize
    }

    /// Uniform `i64` in `[lo, hi)`. Panics on an empty range.
    #[inline]
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "i64_in: empty range [{lo}, {hi})");
        let width = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add((self.next_u64() % width) as i64)
    }

    /// Uniform `i32` in `[lo, hi)`.
    #[inline]
    pub fn i32_in(&mut self, lo: i32, hi: i32) -> i32 {
        self.i64_in(i64::from(lo), i64::from(hi)) as i32
    }

    /// Pick a uniformly random element of a nonempty slice.
    #[inline]
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.usize_in(0, items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Xorshift64Star::seed_from_u64(42);
        let mut b = Xorshift64Star::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xorshift64Star::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut r = Xorshift64Star::seed_from_u64(0);
        let xs: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(xs.iter().any(|&x| x != 0));
        assert_ne!(xs[0], xs[1]);
    }

    #[test]
    fn unit_f64_in_range_and_uniformish() {
        let mut r = Xorshift64Star::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn chance_matches_probability() {
        let mut r = Xorshift64Star::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| r.chance(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits {hits}");
        // Degenerate probabilities never panic (rand::gen_bool would).
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut r = Xorshift64Star::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = r.usize_in(0, 5);
            seen[v] = true;
            let i = r.i64_in(-64, 256);
            assert!((-64..256).contains(&i));
            let f = r.f64_in(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = r.u32_in(3, 7);
            assert!((3..7).contains(&u));
        }
        assert!(seen.iter().all(|&s| s), "all residues hit");
    }

    #[test]
    fn negative_range_spanning_zero() {
        let mut r = Xorshift64Star::seed_from_u64(13);
        let mut neg = 0;
        for _ in 0..1000 {
            if r.i64_in(-10, 10) < 0 {
                neg += 1;
            }
        }
        assert!((300..700).contains(&neg), "negatives {neg}");
    }

    #[test]
    #[should_panic(expected = "u64_in: empty range")]
    fn empty_range_panics_with_message() {
        let mut r = Xorshift64Star::seed_from_u64(1);
        r.u64_in(5, 5);
    }

    #[test]
    fn pick_covers_slice() {
        let mut r = Xorshift64Star::seed_from_u64(17);
        let items = ["a", "b", "c"];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(*r.pick(&items));
        }
        assert_eq!(seen.len(), 3);
    }
}

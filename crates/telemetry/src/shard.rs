//! Sharded telemetry for parallel sweeps.
//!
//! The [`trace`], [`metrics`] and [`profile`] sinks are thread-local, so a
//! multi-threaded sweep would otherwise record nothing: every event would
//! land in the workers' uninstalled sinks. A [`SweepSession`] solves this
//! without any hot-path synchronization:
//!
//! 1. [`SweepSession::begin`] captures the sinks installed on the calling
//!    thread (remembering their configuration) — or returns `None` when no
//!    sink is installed, in which case the sweep runs with zero telemetry
//!    overhead.
//! 2. Each worker brackets every work item with
//!    [`SweepSession::install_item`] / [`SweepSession::collect_item`]:
//!    fresh, identically-configured sinks are installed thread-locally for
//!    the item, then collected into a *shard* tagged with the item index
//!    and worker id.
//! 3. After the join, [`SweepSession::finish`] sorts the shards by work
//!    item — making the merge deterministic regardless of which worker ran
//!    what, or in what order items completed — merges them into the
//!    original sinks, and reinstalls those on the calling thread so the
//!    caller's normal flush path (e.g. `Telemetry::finish` in the bench
//!    CLI) works unchanged.
//!
//! Sharding per *item* rather than per worker keeps the merged artifacts
//! bit-stable: the trace ring bound and metric rows of an item depend only
//! on that item's (deterministic) simulation, never on which other items
//! happened to share a worker's sink.
//!
//! Merge invariants (see DESIGN.md "Sweep engine & sharded telemetry"):
//!
//! - **Trace**: one Chrome trace; each run keeps its event order and
//!   simulated-cycle timestamps, gets a fresh deterministic pid, and is
//!   tagged with its worker as a named tid ([`trace::Tracer::absorb`]).
//! - **Metrics**: one JSONL stream; rows ordered by committed-instruction
//!   interval, then run label, then sequence number; a final
//!   `sweep:total` row sums every counter absolutely and merges the
//!   histograms, reconciling exactly with the aggregated end-of-run
//!   reports ([`metrics::MetricsHub::seal_merged`]).
//! - **Profile**: one report with aggregate section totals plus per-worker
//!   self/total attribution ([`profile::Profiler::absorb_worker`]).
//!
//! ```
//! use parrot_telemetry::shard::SweepSession;
//! use parrot_telemetry::metrics;
//!
//! metrics::install(metrics::MetricsHub::new(1_000));
//! let sess = SweepSession::begin().expect("a sink is installed");
//! for item in 0..2 {
//!     // On a worker thread in a real sweep:
//!     sess.install_item();
//!     metrics::begin_run(&format!("run{item}"));
//!     metrics::counter_set("work", 7);
//!     metrics::snapshot(500, 250);
//!     sess.collect_item(item, 0);
//! }
//! sess.finish(); // merged hub is reinstalled on this thread
//! let hub = metrics::take().unwrap();
//! let total = hub.to_jsonl().lines().last().unwrap().to_string();
//! assert!(total.contains("\"sweep:total\""));
//! assert!(total.contains("\"work\":14")); // counters summed absolutely
//! assert!(total.contains("\"insts\":1000")); // run intervals aggregated
//! ```

use crate::{metrics, profile, trace};
use std::sync::Mutex;

/// Run label of the final merged metrics row appended by
/// [`SweepSession::finish`].
pub const MERGED_RUN_LABEL: &str = "sweep:total";

/// Sinks collected from one completed work item.
struct Shard {
    item: usize,
    worker: u32,
    tracer: Option<trace::Tracer>,
    metrics: Option<metrics::MetricsHub>,
    profiler: Option<profile::Profiler>,
}

/// A sweep-wide telemetry session: the calling thread's sinks, the
/// configuration to replicate on workers, and the collected shards.
///
/// See the [module docs](self) for the lifecycle.
pub struct SweepSession {
    trace_cap: Option<usize>,
    metrics_interval: Option<u64>,
    profile: bool,
    base_trace: Mutex<Option<trace::Tracer>>,
    base_metrics: Mutex<Option<metrics::MetricsHub>>,
    base_profile: Mutex<Option<profile::Profiler>>,
    shards: Mutex<Vec<Shard>>,
}

impl SweepSession {
    /// Capture the calling thread's installed sinks into a session, or
    /// `None` when no sink is installed (the sweep then needs no telemetry
    /// bookkeeping at all).
    pub fn begin() -> Option<SweepSession> {
        if !trace::active() && !metrics::active() && !profile::active() {
            return None;
        }
        let t = trace::take();
        let m = metrics::take();
        let p = profile::take();
        Some(SweepSession {
            trace_cap: t.as_ref().map(trace::Tracer::cap),
            metrics_interval: m.as_ref().map(metrics::MetricsHub::interval),
            profile: p.is_some(),
            base_trace: Mutex::new(t),
            base_metrics: Mutex::new(m),
            base_profile: Mutex::new(p),
            shards: Mutex::new(Vec::new()),
        })
    }

    /// Install fresh sinks, configured like the captured ones, on the
    /// current worker thread. Call immediately before running a work item.
    pub fn install_item(&self) {
        if let Some(cap) = self.trace_cap {
            trace::install(trace::Tracer::new(cap));
        }
        if let Some(interval) = self.metrics_interval {
            metrics::install(metrics::MetricsHub::new(interval));
        }
        if self.profile {
            profile::install(profile::Profiler::new());
        }
    }

    /// Collect the current worker thread's sinks into the shard for work
    /// item `item`, executed by `worker`. Call immediately after the item
    /// completes.
    pub fn collect_item(&self, item: usize, worker: u32) {
        let shard = Shard {
            item,
            worker,
            tracer: if self.trace_cap.is_some() {
                trace::take()
            } else {
                None
            },
            metrics: if self.metrics_interval.is_some() {
                metrics::take()
            } else {
                None
            },
            profiler: if self.profile { profile::take() } else { None },
        };
        self.shards.lock().expect("shard list lock").push(shard);
    }

    /// Merge every collected shard (in work-item order) into the captured
    /// sinks and reinstall them on the calling thread, so the caller
    /// flushes one merged trace file, one reconciled metrics stream ending
    /// in a [`MERGED_RUN_LABEL`] total row, and one profiler report with
    /// per-worker attribution.
    pub fn finish(self) {
        let mut shards = self.shards.into_inner().expect("shard list");
        shards.sort_by_key(|s| s.item);
        let mut tracer = self.base_trace.into_inner().expect("base tracer");
        let mut hub = self.base_metrics.into_inner().expect("base metrics");
        let mut profiler = self.base_profile.into_inner().expect("base profiler");
        for shard in shards {
            if let (Some(base), Some(t)) = (tracer.as_mut(), shard.tracer) {
                base.absorb(shard.worker, t);
            }
            if let (Some(base), Some(m)) = (hub.as_mut(), shard.metrics) {
                base.absorb(m);
            }
            if let (Some(base), Some(p)) = (profiler.as_mut(), shard.profiler) {
                base.absorb_worker(shard.worker, p);
            }
        }
        if let Some(t) = tracer {
            trace::install(t);
        }
        if let Some(mut m) = hub {
            m.seal_merged(MERGED_RUN_LABEL);
            metrics::install(m);
        }
        if let Some(p) = profiler {
            profile::install(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn begin_is_none_without_sinks() {
        assert!(!trace::active() && !metrics::active() && !profile::active());
        assert!(SweepSession::begin().is_none());
    }

    #[test]
    fn session_replicates_configs_and_merges_back() {
        metrics::install(metrics::MetricsHub::new(500));
        trace::install(trace::Tracer::new(64));
        profile::install(profile::Profiler::new());
        let session = SweepSession::begin().expect("sinks installed");
        // Sinks moved into the session: the thread has none until finish.
        assert!(!metrics::active() && !trace::active() && !profile::active());

        // Simulate two items completing on two workers, out of item order.
        for (item, worker) in [(1usize, 0u32), (0, 1)] {
            session.install_item();
            assert!(metrics::active() && trace::active() && profile::active());
            metrics::begin_run(&format!("run{item}"));
            metrics::counter_set("trace_entries", 10 * (item as u64 + 1));
            metrics::snapshot(1_000, 500);
            trace::begin_run(&format!("run{item}"));
            trace::set_clock(7);
            trace::instant("e", "c", trace::track::MACHINE, trace::NO_ARGS);
            {
                let _s = profile::scope("machine.run");
            }
            session.collect_item(item, worker);
        }
        session.finish();

        let hub = metrics::take().expect("merged hub reinstalled");
        let jsonl = hub.to_jsonl();
        let rows: Vec<_> = jsonl.lines().map(|l| json::parse(l).unwrap()).collect();
        // Two per-run rows (sorted by insts then run label) + the total.
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].get("run").as_str(), Some("run0"));
        assert_eq!(rows[1].get("run").as_str(), Some("run1"));
        let total = &rows[2];
        assert_eq!(total.get("run").as_str(), Some(MERGED_RUN_LABEL));
        assert_eq!(total.get("trace_entries").as_u64(), Some(30));
        assert_eq!(total.get("insts").as_u64(), Some(2_000));
        assert_eq!(total.get("cycles").as_u64(), Some(1_000));
        assert_eq!(total.get("runs_merged").as_u64(), Some(2));

        let tracer = trace::take().expect("merged tracer reinstalled");
        let doc = json::parse(&tracer.to_chrome_json()).unwrap();
        let events = doc.get("traceEvents").as_arr().unwrap();
        // Shards sorted by item: run0 gets the lower pid despite finishing
        // second.
        let pid_of = |label: &str| {
            events
                .iter()
                .find(|e| {
                    e.get("name").as_str() == Some("process_name")
                        && e.get("args").get("name").as_str() == Some(label)
                })
                .and_then(|e| e.get("pid").as_u64())
                .unwrap()
        };
        assert!(pid_of("run0") < pid_of("run1"));
        // Worker attribution rendered as a named tid 0.
        assert!(events.iter().any(|e| {
            e.get("name").as_str() == Some("thread_name")
                && e.get("args").get("name").as_str() == Some("worker 1")
        }));

        let p = profile::take().expect("merged profiler reinstalled");
        assert_eq!(p.section("machine.run").unwrap().0, 2);
        assert_eq!(p.worker_section(0, "machine.run").unwrap().0, 1);
        assert_eq!(p.worker_section(1, "machine.run").unwrap().0, 1);
        let report = p.report();
        assert!(report.contains("per-worker attribution"));
    }
}

//! Sharded telemetry for parallel sweeps.
//!
//! The [`trace`], [`metrics`] and [`profile`] sinks are thread-local, so a
//! multi-threaded sweep would otherwise record nothing: every event would
//! land in the workers' uninstalled sinks. A [`SweepSession`] solves this
//! without any hot-path synchronization:
//!
//! 1. [`SweepSession::begin`] captures the sinks installed on the calling
//!    thread (remembering their configuration) — or returns `None` when no
//!    sink is installed, in which case the sweep runs with zero telemetry
//!    overhead.
//! 2. Each worker brackets every work item with
//!    [`SweepSession::install_item`] / [`SweepSession::collect_item`]:
//!    fresh, identically-configured sinks are installed thread-locally for
//!    the item, then collected into a *shard* tagged with the item index
//!    and worker id. During the item, every event is a plain store into
//!    the shard's own ring buffers and counter slots — no locks, no
//!    cross-thread traffic.
//! 3. Shards drain into the base sinks *at work-item boundaries*: when a
//!    shard for the next work item (in item order) is available,
//!    [`SweepSession::collect_item`] batch-absorbs the contiguous ready
//!    prefix into the captured sinks instead of letting completed shards
//!    pile up until the join. This bounds peak memory to in-flight items
//!    rather than the whole sweep — the fix for the parallel all-sinks
//!    pathology, where retaining every shard's event ring until the end
//!    put hundreds of megabytes of dead telemetry on the heap.
//! 4. After the join, [`SweepSession::finish`] drains any remaining shards
//!    (still in item order), merges them into the original sinks, and
//!    reinstalls those on the calling thread so the caller's normal flush
//!    path (e.g. `Telemetry::finish` in the bench CLI) works unchanged.
//!
//! Sharding per *item* rather than per worker keeps the merged artifacts
//! bit-stable: the trace ring bound and metric rows of an item depend only
//! on that item's (deterministic) simulation, never on which other items
//! happened to share a worker's sink. Draining strictly in item order —
//! only one drainer runs at a time, and it only ever absorbs the next
//! contiguous item — makes the merged documents identical regardless of
//! which worker finished what first, and identical to a serial sweep.
//!
//! Merge invariants (see DESIGN.md "Sweep engine & sharded telemetry"):
//!
//! - **Trace**: one Chrome trace; each run keeps its event order and
//!   simulated-cycle timestamps, gets a fresh deterministic pid, and is
//!   tagged with its worker as a named tid ([`trace::Tracer::absorb`]).
//!   Per-name sampling stats fold so the merged file's correction
//!   metadata stays exact.
//! - **Metrics**: one JSONL stream; rows ordered by committed-instruction
//!   interval, then run label, then sequence number; a final
//!   `sweep:total` row sums every counter absolutely and merges the
//!   histograms, reconciling exactly with the aggregated end-of-run
//!   reports ([`metrics::MetricsHub::seal_merged`]). Counters are plain
//!   per-shard `u64` values folded at merge, and trace-event sampling
//!   never touches them, so the total row is invariant under sampling.
//! - **Profile**: one report with aggregate section totals plus per-worker
//!   self/total attribution ([`profile::Profiler::absorb_worker`]).
//!
//! ```
//! use parrot_telemetry::shard::SweepSession;
//! use parrot_telemetry::metrics;
//!
//! metrics::install(metrics::MetricsHub::new(1_000));
//! let sess = SweepSession::begin().expect("a sink is installed");
//! for item in 0..2 {
//!     // On a worker thread in a real sweep:
//!     sess.install_item();
//!     metrics::begin_run(&format!("run{item}"));
//!     metrics::counter_set("work", 7);
//!     metrics::snapshot(500, 250);
//!     sess.collect_item(item, 0);
//! }
//! sess.finish(); // merged hub is reinstalled on this thread
//! let hub = metrics::take().unwrap();
//! let total = hub.to_jsonl().lines().last().unwrap().to_string();
//! assert!(total.contains("\"sweep:total\""));
//! assert!(total.contains("\"work\":14")); // counters summed absolutely
//! assert!(total.contains("\"insts\":1000")); // run intervals aggregated
//! ```

use crate::{metrics, profile, trace};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Run label of the final merged metrics row appended by
/// [`SweepSession::finish`].
pub const MERGED_RUN_LABEL: &str = "sweep:total";

/// A shared progress feed for long-running sweeps, drained from the
/// sharded telemetry merge: every time a completed work item's shard is
/// absorbed into the base sinks (strictly in item order — see the module
/// docs), the counter ticks. `parrot serve` installs one per job with
/// [`install_progress`] before handing the job to the sweep runner, then
/// reads `done/total` from other threads to answer job-status queries
/// while the sweep is still running.
#[derive(Debug, Default)]
pub struct Progress {
    done: AtomicU64,
    total: AtomicU64,
}

impl Progress {
    /// A fresh handle expecting `total` work items.
    pub fn new(total: u64) -> Arc<Progress> {
        Arc::new(Progress {
            done: AtomicU64::new(0),
            total: AtomicU64::new(total),
        })
    }

    /// Work items drained so far (monotonic, in item order).
    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Acquire)
    }

    /// Expected total work items (0 when unknown).
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Acquire)
    }

    /// Record one more drained work item.
    pub fn tick(&self) {
        self.done.fetch_add(1, Ordering::AcqRel);
    }

    /// Reset the expected total (a runner that discovers its work list
    /// late may correct the estimate).
    pub fn set_total(&self, total: u64) {
        self.total.store(total, Ordering::Release);
    }
}

thread_local! {
    static PROGRESS: RefCell<Option<Arc<Progress>>> = const { RefCell::new(None) };
}

/// Install a progress handle on the current thread. The next
/// [`SweepSession::begin`] on this thread captures it and ticks it once
/// per drained work-item shard; the caller keeps (a clone of) the `Arc`
/// and may read it from any thread.
pub fn install_progress(p: Arc<Progress>) {
    PROGRESS.with(|slot| *slot.borrow_mut() = Some(p));
}

/// Remove and return the current thread's progress handle, if any.
pub fn take_progress() -> Option<Arc<Progress>> {
    PROGRESS.with(|slot| slot.borrow_mut().take())
}

/// Tick the current thread's installed progress handle, if any. Lets a
/// serial loop report per-step progress through the same channel the
/// sweep runner uses, without the caller having to thread the handle —
/// and compiles to a no-op when nothing is installed (the CLI path).
pub fn tick_installed_progress() {
    PROGRESS.with(|slot| {
        if let Some(p) = slot.borrow().as_ref() {
            p.tick();
        }
    });
}

fn current_progress() -> Option<Arc<Progress>> {
    PROGRESS.with(|slot| slot.borrow().clone())
}

/// Sinks collected from one completed work item.
struct Shard {
    item: usize,
    worker: u32,
    tracer: Option<trace::Tracer>,
    metrics: Option<metrics::MetricsHub>,
    profiler: Option<profile::Profiler>,
}

/// Completed-but-undrained shards plus the drain cursor.
#[derive(Default)]
struct Pending {
    shards: Vec<Shard>,
    /// Next work item to drain; only the drain-lock holder advances it.
    next: usize,
}

/// A sweep-wide telemetry session: the calling thread's sinks, the
/// configuration to replicate on workers, and the collected shards.
///
/// See the [module docs](self) for the lifecycle.
pub struct SweepSession {
    trace_cap: Option<usize>,
    trace_sample: u32,
    metrics_interval: Option<u64>,
    profile: bool,
    base_trace: Mutex<Option<trace::Tracer>>,
    base_metrics: Mutex<Option<metrics::MetricsHub>>,
    base_profile: Mutex<Option<profile::Profiler>>,
    pending: Mutex<Pending>,
    /// Held while draining shards into the base sinks; `try_lock` so at
    /// most one worker drains and drain order stays strictly item order.
    drain: Mutex<()>,
    /// Progress feed captured from the calling thread ([`install_progress`]);
    /// ticked once per drained work-item shard.
    progress: Option<Arc<Progress>>,
}

impl SweepSession {
    /// Capture the calling thread's installed sinks into a session, or
    /// `None` when no sink (and no progress handle) is installed — the
    /// sweep then needs no telemetry bookkeeping at all.
    pub fn begin() -> Option<SweepSession> {
        let progress = current_progress();
        if !trace::active() && !metrics::active() && !profile::active() && progress.is_none() {
            return None;
        }
        let t = trace::take();
        let m = metrics::take();
        let p = profile::take();
        Some(SweepSession {
            trace_cap: t.as_ref().map(trace::Tracer::cap),
            trace_sample: t.as_ref().map_or(1, trace::Tracer::sample),
            metrics_interval: m.as_ref().map(metrics::MetricsHub::interval),
            profile: p.is_some(),
            base_trace: Mutex::new(t),
            base_metrics: Mutex::new(m),
            base_profile: Mutex::new(p),
            pending: Mutex::new(Pending::default()),
            drain: Mutex::new(()),
            progress,
        })
    }

    /// Install fresh sinks, configured like the captured ones (ring
    /// capacity, sampling rate, metrics interval), on the current worker
    /// thread. Call immediately before running a work item.
    pub fn install_item(&self) {
        if let Some(cap) = self.trace_cap {
            let mut t = trace::Tracer::new(cap);
            t.set_sample(self.trace_sample);
            trace::install(t);
        }
        if let Some(interval) = self.metrics_interval {
            metrics::install(metrics::MetricsHub::new(interval));
        }
        if self.profile {
            profile::install(profile::Profiler::new());
        }
    }

    /// Collect the current worker thread's sinks into the shard for work
    /// item `item`, executed by `worker`, then opportunistically drain the
    /// contiguous ready prefix of shards into the base sinks. Call
    /// immediately after the item completes.
    pub fn collect_item(&self, item: usize, worker: u32) {
        let shard = Shard {
            item,
            worker,
            tracer: if self.trace_cap.is_some() {
                trace::take()
            } else {
                None
            },
            metrics: if self.metrics_interval.is_some() {
                metrics::take()
            } else {
                None
            },
            profiler: if self.profile { profile::take() } else { None },
        };
        self.pending
            .lock()
            .expect("shard list lock")
            .shards
            .push(shard);
        self.drain_ready();
    }

    /// Absorb every shard whose item index is next in line. Only one
    /// drainer runs at a time (`try_lock`); a shard that becomes ready
    /// while another worker drains is picked up by the next drain call or
    /// by [`SweepSession::finish`].
    fn drain_ready(&self) {
        let Ok(_guard) = self.drain.try_lock() else {
            return;
        };
        loop {
            let shard = {
                let mut pending = self.pending.lock().expect("shard list lock");
                let next = pending.next;
                match pending.shards.iter().position(|s| s.item == next) {
                    Some(i) => {
                        pending.next += 1;
                        pending.shards.swap_remove(i)
                    }
                    None => return,
                }
            };
            self.absorb(shard);
        }
    }

    /// Merge one shard into the base sinks.
    fn absorb(&self, shard: Shard) {
        if let Some(t) = shard.tracer {
            if let Some(base) = self.base_trace.lock().expect("base tracer").as_mut() {
                base.absorb(shard.worker, t);
            }
        }
        if let Some(m) = shard.metrics {
            if let Some(base) = self.base_metrics.lock().expect("base metrics").as_mut() {
                base.absorb(m);
            }
        }
        if let Some(p) = shard.profiler {
            if let Some(base) = self.base_profile.lock().expect("base profiler").as_mut() {
                base.absorb_worker(shard.worker, p);
            }
        }
        if let Some(progress) = &self.progress {
            progress.tick();
        }
    }

    /// Drain every remaining shard (in work-item order) into the captured
    /// sinks and reinstall them on the calling thread, so the caller
    /// flushes one merged trace file, one reconciled metrics stream ending
    /// in a [`MERGED_RUN_LABEL`] total row, and one profiler report with
    /// per-worker attribution.
    pub fn finish(self) {
        // Workers have joined: drain the contiguous tail, then absorb any
        // non-contiguous leftovers (callers using arbitrary item indices)
        // in sorted order.
        self.drain_ready();
        let mut leftovers = self.pending.into_inner().expect("shard list").shards;
        leftovers.sort_by_key(|s| s.item);
        let mut tracer = self.base_trace.into_inner().expect("base tracer");
        let mut hub = self.base_metrics.into_inner().expect("base metrics");
        let mut profiler = self.base_profile.into_inner().expect("base profiler");
        for shard in leftovers {
            if let (Some(base), Some(t)) = (tracer.as_mut(), shard.tracer) {
                base.absorb(shard.worker, t);
            }
            if let (Some(base), Some(m)) = (hub.as_mut(), shard.metrics) {
                base.absorb(m);
            }
            if let (Some(base), Some(p)) = (profiler.as_mut(), shard.profiler) {
                base.absorb_worker(shard.worker, p);
            }
            if let Some(progress) = &self.progress {
                progress.tick();
            }
        }
        if let Some(t) = tracer {
            trace::install(t);
        }
        if let Some(mut m) = hub {
            m.seal_merged(MERGED_RUN_LABEL);
            metrics::install(m);
        }
        if let Some(p) = profiler {
            profile::install(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn begin_is_none_without_sinks() {
        assert!(!trace::active() && !metrics::active() && !profile::active());
        assert!(SweepSession::begin().is_none());
    }

    #[test]
    fn session_replicates_configs_and_merges_back() {
        metrics::install(metrics::MetricsHub::new(500));
        trace::install(trace::Tracer::new(64));
        profile::install(profile::Profiler::new());
        let session = SweepSession::begin().expect("sinks installed");
        // Sinks moved into the session: the thread has none until finish.
        assert!(!metrics::active() && !trace::active() && !profile::active());

        // Simulate two items completing on two workers, out of item order.
        for (item, worker) in [(1usize, 0u32), (0, 1)] {
            session.install_item();
            assert!(metrics::active() && trace::active() && profile::active());
            metrics::begin_run(&format!("run{item}"));
            metrics::counter_set("trace_entries", 10 * (item as u64 + 1));
            metrics::snapshot(1_000, 500);
            trace::begin_run(&format!("run{item}"));
            trace::set_clock(7);
            trace::instant("e", "c", trace::track::MACHINE, trace::NO_ARGS);
            {
                let _s = profile::scope("machine.run");
            }
            session.collect_item(item, worker);
        }
        session.finish();

        let hub = metrics::take().expect("merged hub reinstalled");
        let jsonl = hub.to_jsonl();
        let rows: Vec<_> = jsonl.lines().map(|l| json::parse(l).unwrap()).collect();
        // Two per-run rows (sorted by insts then run label) + the total.
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].get("run").as_str(), Some("run0"));
        assert_eq!(rows[1].get("run").as_str(), Some("run1"));
        let total = &rows[2];
        assert_eq!(total.get("run").as_str(), Some(MERGED_RUN_LABEL));
        assert_eq!(total.get("trace_entries").as_u64(), Some(30));
        assert_eq!(total.get("insts").as_u64(), Some(2_000));
        assert_eq!(total.get("cycles").as_u64(), Some(1_000));
        assert_eq!(total.get("runs_merged").as_u64(), Some(2));

        let tracer = trace::take().expect("merged tracer reinstalled");
        let doc = json::parse(&tracer.to_chrome_json()).unwrap();
        let events = doc.get("traceEvents").as_arr().unwrap();
        // Shards drained in item order: run0 gets the lower pid despite
        // finishing second.
        let pid_of = |label: &str| {
            events
                .iter()
                .find(|e| {
                    e.get("name").as_str() == Some("process_name")
                        && e.get("args").get("name").as_str() == Some(label)
                })
                .and_then(|e| e.get("pid").as_u64())
                .unwrap()
        };
        assert!(pid_of("run0") < pid_of("run1"));
        // Worker attribution rendered as a named tid 0.
        assert!(events.iter().any(|e| {
            e.get("name").as_str() == Some("thread_name")
                && e.get("args").get("name").as_str() == Some("worker 1")
        }));

        let p = profile::take().expect("merged profiler reinstalled");
        assert_eq!(p.section("machine.run").unwrap().0, 2);
        assert_eq!(p.worker_section(0, "machine.run").unwrap().0, 1);
        assert_eq!(p.worker_section(1, "machine.run").unwrap().0, 1);
        let report = p.report();
        assert!(report.contains("per-worker attribution"));
    }

    #[test]
    fn progress_ticks_in_item_order_without_other_sinks() {
        // A progress handle alone is enough to get a session: serve jobs
        // want incremental status even when no trace/metrics sink is on.
        let p = Progress::new(3);
        install_progress(Arc::clone(&p));
        let session = SweepSession::begin().expect("progress handle installed");
        assert_eq!(p.done(), 0);
        // Item 1 completes first: nothing drains (item 0 not ready).
        session.install_item();
        session.collect_item(1, 0);
        assert_eq!(p.done(), 0, "drain is strictly in item order");
        // Item 0 completes: both drain.
        session.install_item();
        session.collect_item(0, 1);
        assert_eq!(p.done(), 2);
        // Item 2 arrives only at finish.
        session.install_item();
        session.collect_item(7, 0); // non-contiguous: drained at finish
        session.finish();
        assert_eq!(p.done(), 3);
        assert_eq!(p.total(), 3);
        assert!(take_progress().is_some(), "handle stays installed");
        assert!(take_progress().is_none());
    }

    #[test]
    fn session_replicates_sampling_rate_and_folds_stats() {
        let mut t = trace::Tracer::new(256);
        t.set_sample(3);
        trace::install(t);
        let session = SweepSession::begin().expect("tracer installed");
        for item in 0..2usize {
            session.install_item();
            trace::begin_run(&format!("run{item}"));
            for i in 0..6u64 {
                trace::set_clock(i);
                trace::instant("e", "c", trace::track::MACHINE, trace::NO_ARGS);
            }
            session.collect_item(item, 0);
        }
        session.finish();
        let t = trace::take().expect("merged tracer");
        // Each shard keeps ceil(6/3)=2 of 6 "e" events.
        assert_eq!(t.event_stats("e"), (12, 8));
        assert_eq!(t.len(), 4);
    }
}

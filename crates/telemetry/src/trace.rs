//! Bounded ring-buffer event tracer emitting Chrome trace-event JSON
//! (loadable in Perfetto / `about://tracing`).
//!
//! Timestamps are **simulated cycles**, written into the format's
//! microsecond `ts`/`dur` fields, so the timeline renders simulated time.
//! The machine publishes the current cycle via [`set_clock`]; instrumented
//! crates that do not know the cycle (`parrot-trace`, `parrot-opt`) emit
//! events against that ambient clock.
//!
//! Like the `log` crate, the tracer is an installable thread-local sink:
//! [`install`] one before a run, call the free functions from anywhere, and
//! [`take`] it back to write the file. When no tracer is installed every
//! hook is a single thread-local `Cell` read.
//!
//! Tracers from parallel sweep workers merge into one document with
//! [`Tracer::absorb`]: run pids are renumbered deterministically, cycle
//! timestamps are preserved, and each absorbed run is tagged with the
//! worker that executed it.
//!
//! # Example
//!
//! ```
//! use parrot_telemetry::trace::{self, Tracer, track, arg1};
//!
//! let mut t = Tracer::new(1024);
//! t.begin_run("TON/gzip");
//! trace::install(t);
//! trace::set_clock(100);
//! trace::instant("trace.abort", "trace", track::TRACE, arg1("flushed_uops", 12.0));
//! trace::complete("hot", "phase", track::PHASE, 40, 90, trace::NO_ARGS);
//!
//! let t = trace::take().unwrap();
//! let doc = parrot_telemetry::json::parse(&t.to_chrome_json()).unwrap();
//! assert!(!doc.get("traceEvents").as_arr().unwrap().is_empty());
//! ```

use crate::json::write_escaped;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;

/// Track ("thread") ids used to group events into Perfetto rows.
pub mod track {
    /// Fetch-phase spans: cold segments, hot-trace runs.
    pub const PHASE: u32 = 1;
    /// Trace lifecycle: promotion, construction, cache insert/evict,
    /// entries, aborts.
    pub const TRACE: u32 = 2;
    /// Optimizer jobs and passes.
    pub const OPT: u32 = 3;
    /// Machine-level instants (core switches, snapshots).
    pub const MACHINE: u32 = 4;
}

/// Up to two numeric args per event, kept allocation-free.
pub type Args = [Option<(&'static str, f64)>; 2];

/// One numeric arg.
pub fn arg1(k: &'static str, v: f64) -> Args {
    [Some((k, v)), None]
}

/// Two numeric args.
pub fn arg2(k1: &'static str, v1: f64, k2: &'static str, v2: f64) -> Args {
    [Some((k1, v1)), Some((k2, v2))]
}

/// No args.
pub const NO_ARGS: Args = [None, None];

#[derive(Clone, Debug)]
struct Event {
    name: &'static str,
    cat: &'static str,
    /// 'X' = complete (has dur), 'i' = instant.
    ph: u8,
    ts: u64,
    dur: u64,
    pid: u32,
    tid: u32,
    args: Args,
}

/// One run's process metadata: pid, display label, and — for runs absorbed
/// from a sweep shard — the worker that executed it (emitted as a named
/// tid-0 row so Perfetto shows worker attribution).
#[derive(Clone, Debug)]
struct Run {
    pid: u32,
    label: String,
    worker: Option<u32>,
}

/// Bounded recorder of trace events. Oldest events are dropped once `cap`
/// is reached (the drop count is reported in the emitted file's metadata).
#[derive(Debug)]
pub struct Tracer {
    cap: usize,
    events: VecDeque<Event>,
    dropped: u64,
    /// Current run ("process") id; one per simulated run.
    pid: u32,
    /// Process-name metadata, one entry per run.
    runs: Vec<Run>,
}

impl Tracer {
    /// A tracer retaining at most `cap` events.
    pub fn new(cap: usize) -> Tracer {
        Tracer {
            cap: cap.max(16),
            events: VecDeque::new(),
            dropped: 0,
            pid: 0,
            runs: Vec::new(),
        }
    }

    /// The ring capacity this tracer was created with.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Start a new run: a fresh Perfetto "process" labeled `label`.
    pub fn begin_run(&mut self, label: &str) {
        self.pid += 1;
        self.runs.push(Run {
            pid: self.pid,
            label: label.to_string(),
            worker: None,
        });
    }

    /// Fold a sweep shard's tracer into this one. The shard's runs keep
    /// their event order and simulated-cycle timestamps but are renumbered
    /// onto fresh pids after this tracer's own, and are tagged with the
    /// sweep `worker` that executed them (rendered as a named tid). Call in
    /// a deterministic shard order (the sweep session sorts by work item)
    /// so the merged document is identical regardless of which worker
    /// finished first. Ring-drop counts add; the merged tracer's capacity
    /// grows to hold every absorbed event (no merge-time drops).
    pub fn absorb(&mut self, worker: u32, other: Tracer) {
        let base = self.pid;
        self.dropped += other.dropped;
        let mut absorbed_pids = other.pid;
        if other.runs.is_empty() && !other.events.is_empty() {
            // Events recorded without begin_run land on pid 1; synthesize a
            // process entry so they stay attributed in the merged file.
            self.runs.push(Run {
                pid: base + 1,
                label: format!("worker {worker}"),
                worker: Some(worker),
            });
            absorbed_pids = absorbed_pids.max(1);
        }
        for r in other.runs {
            self.runs.push(Run {
                pid: base + r.pid,
                label: r.label,
                worker: r.worker.or(Some(worker)),
            });
        }
        for mut ev in other.events {
            ev.pid = base + ev.pid.max(1);
            self.events.push_back(ev);
        }
        self.pid = base + absorbed_pids;
        self.cap = self.cap.max(self.events.len());
    }

    fn push(&mut self, ev: Event) {
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events dropped to the ring bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Render the Chrome trace-event JSON document.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ns\",\"otherData\":{\"clock\":\"simulated-cycles\"");
        if self.dropped > 0 {
            out.push_str(&format!(",\"droppedEvents\":{}", self.dropped));
        }
        out.push_str("},\"traceEvents\":[");
        let mut first = true;
        for run in &self.runs {
            let pid = run.pid;
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":"
            ));
            write_escaped(&run.label, &mut out);
            out.push_str("}}");
            if let Some(w) = run.worker {
                out.push_str(&format!(
                    ",{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\"worker {w}\"}}}}"
                ));
            }
            for (tid, tname) in [
                (track::PHASE, "fetch phase"),
                (track::TRACE, "trace lifecycle"),
                (track::OPT, "optimizer"),
                (track::MACHINE, "machine"),
            ] {
                out.push_str(&format!(
                    ",{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":"
                ));
                write_escaped(tname, &mut out);
                out.push_str("}}");
            }
        }
        for ev in &self.events {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"name\":");
            write_escaped(ev.name, &mut out);
            out.push_str(",\"cat\":");
            write_escaped(ev.cat, &mut out);
            out.push_str(&format!(
                ",\"ph\":\"{}\",\"ts\":{},\"pid\":{},\"tid\":{}",
                ev.ph as char, ev.ts, ev.pid, ev.tid
            ));
            if ev.ph == b'X' {
                out.push_str(&format!(",\"dur\":{}", ev.dur));
            }
            if ev.ph == b'i' {
                out.push_str(",\"s\":\"t\"");
            }
            out.push_str(",\"args\":{");
            let mut firsta = true;
            for (k, v) in ev.args.iter().flatten() {
                if !firsta {
                    out.push(',');
                }
                firsta = false;
                write_escaped(k, &mut out);
                out.push(':');
                if !v.is_finite() {
                    out.push_str("null");
                } else if v.fract() == 0.0 && v.abs() < 2f64.powi(53) {
                    out.push_str(&format!("{}", *v as i64));
                } else {
                    out.push_str(&format!("{v:?}"));
                }
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }
}

thread_local! {
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static CLOCK: Cell<u64> = const { Cell::new(0) };
    static TRACER: RefCell<Option<Tracer>> = const { RefCell::new(None) };
}

/// Install a tracer as this thread's sink (replacing any previous one,
/// which is returned).
pub fn install(t: Tracer) -> Option<Tracer> {
    ACTIVE.with(|a| a.set(true));
    TRACER.with(|cell| cell.borrow_mut().replace(t))
}

/// Remove and return the installed tracer.
pub fn take() -> Option<Tracer> {
    ACTIVE.with(|a| a.set(false));
    TRACER.with(|cell| cell.borrow_mut().take())
}

/// Is a tracer installed on this thread? (single `Cell` read)
#[inline]
pub fn active() -> bool {
    ACTIVE.with(|a| a.get())
}

/// Publish the current simulated cycle; events recorded without an explicit
/// timestamp use this clock.
#[inline]
pub fn set_clock(now: u64) {
    if active() {
        CLOCK.with(|c| c.set(now));
    }
}

/// The most recently published simulated cycle.
#[inline]
pub fn clock() -> u64 {
    CLOCK.with(|c| c.get())
}

fn with<F: FnOnce(&mut Tracer)>(f: F) {
    TRACER.with(|cell| {
        if let Some(t) = cell.borrow_mut().as_mut() {
            f(t);
        }
    });
}

/// Begin a new run (fresh Perfetto process) labeled `label`.
pub fn begin_run(label: &str) {
    if active() {
        with(|t| t.begin_run(label));
    }
}

/// Record an instant event at the ambient clock.
#[inline]
pub fn instant(name: &'static str, cat: &'static str, tid: u32, args: Args) {
    if active() {
        let ts = clock();
        with(|t| {
            let pid = t.pid.max(1);
            t.push(Event {
                name,
                cat,
                ph: b'i',
                ts,
                dur: 0,
                pid,
                tid,
                args,
            });
        });
    }
}

/// Record a complete span `[start, end)` in simulated cycles.
#[inline]
pub fn complete(name: &'static str, cat: &'static str, tid: u32, start: u64, end: u64, args: Args) {
    if active() {
        with(|t| {
            let pid = t.pid.max(1);
            t.push(Event {
                name,
                cat,
                ph: b'X',
                ts: start,
                dur: end.saturating_sub(start),
                pid,
                tid,
                args,
            });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn emitted_file_parses_and_has_required_fields() {
        let mut t = Tracer::new(128);
        t.begin_run("TON/gzip");
        install(t);
        set_clock(100);
        instant(
            "trace.abort",
            "trace",
            track::TRACE,
            arg1("flushed_uops", 12.0),
        );
        complete(
            "hot",
            "phase",
            track::PHASE,
            40,
            90,
            arg2("insts", 24.0, "tid", 7.0),
        );
        let t = take().unwrap();
        let doc = json::parse(&t.to_chrome_json()).unwrap();
        let events = doc.get("traceEvents").as_arr().unwrap();
        // 5 metadata events (process + 4 threads) + 2 recorded.
        assert_eq!(events.len(), 7);
        let abort = events
            .iter()
            .find(|e| e.get("name").as_str() == Some("trace.abort"))
            .unwrap();
        assert_eq!(abort.get("ph").as_str(), Some("i"));
        assert_eq!(abort.get("ts").as_u64(), Some(100));
        assert_eq!(abort.get("args").get("flushed_uops").as_u64(), Some(12));
        let hot = events
            .iter()
            .find(|e| e.get("name").as_str() == Some("hot"))
            .unwrap();
        assert_eq!(hot.get("ph").as_str(), Some("X"));
        assert_eq!(hot.get("ts").as_u64(), Some(40));
        assert_eq!(hot.get("dur").as_u64(), Some(50));
        assert_eq!(hot.get("pid").as_u64(), Some(1));
    }

    #[test]
    fn ring_bound_drops_oldest() {
        let mut t = Tracer::new(16);
        t.begin_run("r");
        install(t);
        for i in 0..40u64 {
            set_clock(i);
            instant("e", "c", track::MACHINE, NO_ARGS);
        }
        let t = take().unwrap();
        assert_eq!(t.len(), 16);
        assert_eq!(t.dropped(), 24);
        let doc = json::parse(&t.to_chrome_json()).unwrap();
        assert_eq!(doc.get("otherData").get("droppedEvents").as_u64(), Some(24));
        // The oldest surviving event is ts=24.
        let evs = doc.get("traceEvents").as_arr().unwrap();
        let min_ts = evs
            .iter()
            .filter(|e| e.get("ph").as_str() == Some("i"))
            .filter_map(|e| e.get("ts").as_u64())
            .min();
        assert_eq!(min_ts, Some(24));
    }

    #[test]
    fn hooks_are_noops_when_uninstalled() {
        assert!(!active());
        set_clock(5);
        instant("x", "c", 1, NO_ARGS);
        complete("y", "c", 1, 0, 10, NO_ARGS);
        begin_run("nothing");
        assert!(take().is_none());
    }

    #[test]
    fn absorb_empty_shard_is_inert() {
        let mut base = Tracer::new(64);
        base.begin_run("r");
        install(base);
        set_clock(1);
        instant("e", "c", track::MACHINE, NO_ARGS);
        let mut base = take().unwrap();
        base.absorb(0, Tracer::new(64));
        assert_eq!(base.len(), 1);
        assert_eq!(base.dropped(), 0);
        let doc = json::parse(&base.to_chrome_json()).unwrap();
        // One process, four track threads, one event; no worker tid rows.
        assert_eq!(doc.get("traceEvents").as_arr().unwrap().len(), 6);
    }

    #[test]
    fn absorb_wrapped_shard_sums_drops_and_grows_cap() {
        // Shard ring wrapped (16-deep, 40 events): its drop count must
        // survive the merge and the merged ring must not re-drop.
        let mut shard = Tracer::new(16);
        shard.begin_run("wrapped");
        install(shard);
        for i in 0..40u64 {
            set_clock(i);
            instant("e", "c", track::MACHINE, NO_ARGS);
        }
        let shard = take().unwrap();

        let mut base = Tracer::new(16);
        base.begin_run("main");
        install(base);
        for i in 0..16u64 {
            set_clock(i);
            instant("m", "c", track::MACHINE, NO_ARGS);
        }
        let mut base = take().unwrap();
        base.absorb(3, shard);
        assert_eq!(base.len(), 32, "all surviving events retained");
        assert_eq!(base.dropped(), 24, "shard's ring drops carried over");
        assert!(base.cap() >= 32, "cap grows to fit the merged stream");

        let doc = json::parse(&base.to_chrome_json()).unwrap();
        assert_eq!(doc.get("otherData").get("droppedEvents").as_u64(), Some(24));
        let evs = doc.get("traceEvents").as_arr().unwrap();
        // Absorbed events are repinned onto a fresh pid after base's runs.
        let wrapped_pid = evs
            .iter()
            .find(|e| {
                e.get("name").as_str() == Some("process_name")
                    && e.get("args").get("name").as_str() == Some("wrapped")
            })
            .and_then(|e| e.get("pid").as_u64())
            .unwrap();
        assert_eq!(wrapped_pid, 2);
        assert!(evs
            .iter()
            .filter(|e| e.get("name").as_str() == Some("e"))
            .all(|e| e.get("pid").as_u64() == Some(wrapped_pid)));
        // The absorbing worker shows up as a named tid on the shard's pid.
        assert!(evs.iter().any(|e| {
            e.get("name").as_str() == Some("thread_name")
                && e.get("pid").as_u64() == Some(wrapped_pid)
                && e.get("args").get("name").as_str() == Some("worker 3")
        }));
    }

    #[test]
    fn absorb_shard_without_runs_synthesizes_worker_process() {
        install(Tracer::new(32));
        set_clock(7);
        instant("stray", "c", track::MACHINE, NO_ARGS);
        let shard = take().unwrap();

        let mut base = Tracer::new(32);
        base.begin_run("main");
        base.absorb(5, shard);
        let doc = json::parse(&base.to_chrome_json()).unwrap();
        let evs = doc.get("traceEvents").as_arr().unwrap();
        let synth = evs
            .iter()
            .find(|e| {
                e.get("name").as_str() == Some("process_name")
                    && e.get("args").get("name").as_str() == Some("worker 5")
            })
            .expect("synthesized process for run-less shard");
        let pid = synth.get("pid").as_u64().unwrap();
        assert_eq!(pid, 2);
        let stray = evs
            .iter()
            .find(|e| e.get("name").as_str() == Some("stray"))
            .unwrap();
        assert_eq!(stray.get("pid").as_u64(), Some(pid));
        assert_eq!(stray.get("ts").as_u64(), Some(7));
    }
}

//! Bounded ring-buffer event tracer emitting Chrome trace-event JSON
//! (loadable in Perfetto / `about://tracing`).
//!
//! Timestamps are **simulated cycles**, written into the format's
//! microsecond `ts`/`dur` fields, so the timeline renders simulated time.
//! The machine publishes the current cycle via [`set_clock`]; instrumented
//! crates that do not know the cycle (`parrot-trace`, `parrot-opt`) emit
//! events against that ambient clock.
//!
//! Like the `log` crate, the tracer is an installable thread-local sink:
//! [`install`] one before a run, call the free functions from anywhere, and
//! [`take`] it back to write the file. When no tracer is installed every
//! hook is a single thread-local `Cell` read.

use crate::json::write_escaped;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;

/// Track ("thread") ids used to group events into Perfetto rows.
pub mod track {
    /// Fetch-phase spans: cold segments, hot-trace runs.
    pub const PHASE: u32 = 1;
    /// Trace lifecycle: promotion, construction, cache insert/evict,
    /// entries, aborts.
    pub const TRACE: u32 = 2;
    /// Optimizer jobs and passes.
    pub const OPT: u32 = 3;
    /// Machine-level instants (core switches, snapshots).
    pub const MACHINE: u32 = 4;
}

/// Up to two numeric args per event, kept allocation-free.
pub type Args = [Option<(&'static str, f64)>; 2];

/// One numeric arg.
pub fn arg1(k: &'static str, v: f64) -> Args {
    [Some((k, v)), None]
}

/// Two numeric args.
pub fn arg2(k1: &'static str, v1: f64, k2: &'static str, v2: f64) -> Args {
    [Some((k1, v1)), Some((k2, v2))]
}

/// No args.
pub const NO_ARGS: Args = [None, None];

#[derive(Clone, Debug)]
struct Event {
    name: &'static str,
    cat: &'static str,
    /// 'X' = complete (has dur), 'i' = instant.
    ph: u8,
    ts: u64,
    dur: u64,
    pid: u32,
    tid: u32,
    args: Args,
}

/// Bounded recorder of trace events. Oldest events are dropped once `cap`
/// is reached (the drop count is reported in the emitted file's metadata).
#[derive(Debug)]
pub struct Tracer {
    cap: usize,
    events: VecDeque<Event>,
    dropped: u64,
    /// Current run ("process") id; one per simulated run.
    pid: u32,
    /// Process-name metadata: (pid, label).
    runs: Vec<(u32, String)>,
}

impl Tracer {
    /// A tracer retaining at most `cap` events.
    pub fn new(cap: usize) -> Tracer {
        Tracer {
            cap: cap.max(16),
            events: VecDeque::new(),
            dropped: 0,
            pid: 0,
            runs: Vec::new(),
        }
    }

    /// Start a new run: a fresh Perfetto "process" labeled `label`.
    pub fn begin_run(&mut self, label: &str) {
        self.pid += 1;
        self.runs.push((self.pid, label.to_string()));
    }

    fn push(&mut self, ev: Event) {
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events dropped to the ring bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Render the Chrome trace-event JSON document.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ns\",\"otherData\":{\"clock\":\"simulated-cycles\"");
        if self.dropped > 0 {
            out.push_str(&format!(",\"droppedEvents\":{}", self.dropped));
        }
        out.push_str("},\"traceEvents\":[");
        let mut first = true;
        for (pid, label) in &self.runs {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":"
            ));
            write_escaped(label, &mut out);
            out.push_str("}}");
            for (tid, tname) in [
                (track::PHASE, "fetch phase"),
                (track::TRACE, "trace lifecycle"),
                (track::OPT, "optimizer"),
                (track::MACHINE, "machine"),
            ] {
                out.push_str(&format!(
                    ",{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":"
                ));
                write_escaped(tname, &mut out);
                out.push_str("}}");
            }
        }
        for ev in &self.events {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"name\":");
            write_escaped(ev.name, &mut out);
            out.push_str(",\"cat\":");
            write_escaped(ev.cat, &mut out);
            out.push_str(&format!(
                ",\"ph\":\"{}\",\"ts\":{},\"pid\":{},\"tid\":{}",
                ev.ph as char, ev.ts, ev.pid, ev.tid
            ));
            if ev.ph == b'X' {
                out.push_str(&format!(",\"dur\":{}", ev.dur));
            }
            if ev.ph == b'i' {
                out.push_str(",\"s\":\"t\"");
            }
            out.push_str(",\"args\":{");
            let mut firsta = true;
            for (k, v) in ev.args.iter().flatten() {
                if !firsta {
                    out.push(',');
                }
                firsta = false;
                write_escaped(k, &mut out);
                out.push(':');
                if !v.is_finite() {
                    out.push_str("null");
                } else if v.fract() == 0.0 && v.abs() < 2f64.powi(53) {
                    out.push_str(&format!("{}", *v as i64));
                } else {
                    out.push_str(&format!("{v:?}"));
                }
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }
}

thread_local! {
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static CLOCK: Cell<u64> = const { Cell::new(0) };
    static TRACER: RefCell<Option<Tracer>> = const { RefCell::new(None) };
}

/// Install a tracer as this thread's sink (replacing any previous one,
/// which is returned).
pub fn install(t: Tracer) -> Option<Tracer> {
    ACTIVE.with(|a| a.set(true));
    TRACER.with(|cell| cell.borrow_mut().replace(t))
}

/// Remove and return the installed tracer.
pub fn take() -> Option<Tracer> {
    ACTIVE.with(|a| a.set(false));
    TRACER.with(|cell| cell.borrow_mut().take())
}

/// Is a tracer installed on this thread? (single `Cell` read)
#[inline]
pub fn active() -> bool {
    ACTIVE.with(|a| a.get())
}

/// Publish the current simulated cycle; events recorded without an explicit
/// timestamp use this clock.
#[inline]
pub fn set_clock(now: u64) {
    if active() {
        CLOCK.with(|c| c.set(now));
    }
}

/// The most recently published simulated cycle.
#[inline]
pub fn clock() -> u64 {
    CLOCK.with(|c| c.get())
}

fn with<F: FnOnce(&mut Tracer)>(f: F) {
    TRACER.with(|cell| {
        if let Some(t) = cell.borrow_mut().as_mut() {
            f(t);
        }
    });
}

/// Begin a new run (fresh Perfetto process) labeled `label`.
pub fn begin_run(label: &str) {
    if active() {
        with(|t| t.begin_run(label));
    }
}

/// Record an instant event at the ambient clock.
#[inline]
pub fn instant(name: &'static str, cat: &'static str, tid: u32, args: Args) {
    if active() {
        let ts = clock();
        with(|t| {
            let pid = t.pid.max(1);
            t.push(Event {
                name,
                cat,
                ph: b'i',
                ts,
                dur: 0,
                pid,
                tid,
                args,
            });
        });
    }
}

/// Record a complete span `[start, end)` in simulated cycles.
#[inline]
pub fn complete(name: &'static str, cat: &'static str, tid: u32, start: u64, end: u64, args: Args) {
    if active() {
        with(|t| {
            let pid = t.pid.max(1);
            t.push(Event {
                name,
                cat,
                ph: b'X',
                ts: start,
                dur: end.saturating_sub(start),
                pid,
                tid,
                args,
            });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn emitted_file_parses_and_has_required_fields() {
        let mut t = Tracer::new(128);
        t.begin_run("TON/gzip");
        install(t);
        set_clock(100);
        instant(
            "trace.abort",
            "trace",
            track::TRACE,
            arg1("flushed_uops", 12.0),
        );
        complete(
            "hot",
            "phase",
            track::PHASE,
            40,
            90,
            arg2("insts", 24.0, "tid", 7.0),
        );
        let t = take().unwrap();
        let doc = json::parse(&t.to_chrome_json()).unwrap();
        let events = doc.get("traceEvents").as_arr().unwrap();
        // 5 metadata events (process + 4 threads) + 2 recorded.
        assert_eq!(events.len(), 7);
        let abort = events
            .iter()
            .find(|e| e.get("name").as_str() == Some("trace.abort"))
            .unwrap();
        assert_eq!(abort.get("ph").as_str(), Some("i"));
        assert_eq!(abort.get("ts").as_u64(), Some(100));
        assert_eq!(abort.get("args").get("flushed_uops").as_u64(), Some(12));
        let hot = events
            .iter()
            .find(|e| e.get("name").as_str() == Some("hot"))
            .unwrap();
        assert_eq!(hot.get("ph").as_str(), Some("X"));
        assert_eq!(hot.get("ts").as_u64(), Some(40));
        assert_eq!(hot.get("dur").as_u64(), Some(50));
        assert_eq!(hot.get("pid").as_u64(), Some(1));
    }

    #[test]
    fn ring_bound_drops_oldest() {
        let mut t = Tracer::new(16);
        t.begin_run("r");
        install(t);
        for i in 0..40u64 {
            set_clock(i);
            instant("e", "c", track::MACHINE, NO_ARGS);
        }
        let t = take().unwrap();
        assert_eq!(t.len(), 16);
        assert_eq!(t.dropped(), 24);
        let doc = json::parse(&t.to_chrome_json()).unwrap();
        assert_eq!(doc.get("otherData").get("droppedEvents").as_u64(), Some(24));
        // The oldest surviving event is ts=24.
        let evs = doc.get("traceEvents").as_arr().unwrap();
        let min_ts = evs
            .iter()
            .filter(|e| e.get("ph").as_str() == Some("i"))
            .filter_map(|e| e.get("ts").as_u64())
            .min();
        assert_eq!(min_ts, Some(24));
    }

    #[test]
    fn hooks_are_noops_when_uninstalled() {
        assert!(!active());
        set_clock(5);
        instant("x", "c", 1, NO_ARGS);
        complete("y", "c", 1, 0, 10, NO_ARGS);
        begin_run("nothing");
        assert!(take().is_none());
    }
}

//! Bounded ring-buffer event tracer emitting Chrome trace-event JSON
//! (loadable in Perfetto / `about://tracing`).
//!
//! Timestamps are **simulated cycles**, written into the format's
//! microsecond `ts`/`dur` fields, so the timeline renders simulated time.
//! The machine publishes the current cycle via [`set_clock`]; instrumented
//! crates that do not know the cycle (`parrot-trace`, `parrot-opt`) emit
//! events against that ambient clock.
//!
//! # Fast path
//!
//! Events are stored as fixed-size 48-byte binary records in a flat
//! wrap-around ring (`Vec<Event>` + head index): names, categories and arg
//! keys are interned to `u16` ids against a small per-tracer table scanned
//! by pointer equality (all hook call sites pass `&'static str` literals,
//! so the pointer fast path hits after the first occurrence). Recording an
//! event is an intern lookup plus a 48-byte store — no allocation, no
//! locking, no `VecDeque` churn. Merging sweep shards
//! ([`Tracer::absorb`]) remaps ids through the destination table and bulk-
//! extends the flat ring, so the merge cost is a memcpy plus one small
//! remap table per shard rather than a per-event `push_back`.
//!
//! # Sampling
//!
//! A tracer can keep only 1-in-N events per event *name*
//! ([`Tracer::set_sample`]): each name's stream keeps its first occurrence
//! and every Nth thereafter, and the tracer counts exactly how many were
//! offered vs. sampled out per name ([`Tracer::event_stats`]), so any
//! consumer can correct counts exactly (`true count = offered`, kept =
//! `ceil(offered / N)`). Sampling never touches metrics counters — those
//! are absolute values published by the simulator — so metric totals are
//! independent of the sampling rate by construction.
//!
//! Like the `log` crate, the tracer is an installable thread-local sink:
//! [`install`] one before a run, call the free functions from anywhere, and
//! [`take`] it back to write the file. When no tracer is installed every
//! hook is a single thread-local `Cell` read.
//!
//! Tracers from parallel sweep workers merge into one document with
//! [`Tracer::absorb`]: run pids are renumbered deterministically, cycle
//! timestamps are preserved, and each absorbed run is tagged with the
//! worker that executed it.
//!
//! # Example
//!
//! ```
//! use parrot_telemetry::trace::{self, Tracer, track, arg1};
//!
//! let mut t = Tracer::new(1024);
//! t.begin_run("TON/gzip");
//! trace::install(t);
//! trace::set_clock(100);
//! trace::instant("trace.abort", "trace", track::TRACE, arg1("flushed_uops", 12.0));
//! trace::complete("hot", "phase", track::PHASE, 40, 90, trace::NO_ARGS);
//!
//! let t = trace::take().unwrap();
//! let doc = parrot_telemetry::json::parse(&t.to_chrome_json()).unwrap();
//! assert!(!doc.get("traceEvents").as_arr().unwrap().is_empty());
//! ```

use crate::json::write_escaped;
use std::cell::{Cell, RefCell};

/// Track ("thread") ids used to group events into Perfetto rows.
pub mod track {
    /// Fetch-phase spans: cold segments, hot-trace runs.
    pub const PHASE: u32 = 1;
    /// Trace lifecycle: promotion, construction, cache insert/evict,
    /// entries, aborts.
    pub const TRACE: u32 = 2;
    /// Optimizer jobs and passes.
    pub const OPT: u32 = 3;
    /// Machine-level instants (core switches, snapshots).
    pub const MACHINE: u32 = 4;
}

/// Up to two numeric args per event, kept allocation-free.
pub type Args = [Option<(&'static str, f64)>; 2];

/// One numeric arg.
pub fn arg1(k: &'static str, v: f64) -> Args {
    [Some((k, v)), None]
}

/// Two numeric args.
pub fn arg2(k1: &'static str, v1: f64, k2: &'static str, v2: f64) -> Args {
    [Some((k1, v1)), Some((k2, v2))]
}

/// No args.
pub const NO_ARGS: Args = [None, None];

/// Sentinel id for "no arg key in this slot".
const NO_KEY: u16 = u16::MAX;

/// Fixed-size binary event record (48 bytes). Strings live in the tracer's
/// intern table; the record holds only `u16` ids.
#[derive(Clone, Copy, Debug)]
struct Event {
    ts: u64,
    dur: u64,
    a1: f64,
    a2: f64,
    /// Intern ids for name / category / arg keys (`NO_KEY` = empty slot).
    name: u16,
    cat: u16,
    k1: u16,
    k2: u16,
    pid: u32,
    /// 'X' = complete (has dur), 'i' = instant.
    ph: u8,
    tid: u8,
    _pad: u16,
}

/// Pointer-first `&'static str` equality: hook call sites pass literals, so
/// after the first occurrence the pointer comparison almost always hits.
#[inline]
fn ptr_eq(a: &'static str, b: &'static str) -> bool {
    a.as_ptr() == b.as_ptr() && a.len() == b.len()
}

/// Per-interned-name bookkeeping for exact sampling correction.
#[derive(Clone, Copy, Debug, Default)]
struct NameStat {
    /// Events offered to the tracer under this name.
    offered: u64,
    /// Events discarded by 1-in-N sampling (never entered the ring).
    sampled_out: u64,
    /// Rotating position in this name's 1-in-N window.
    tick: u32,
}

/// One run's process metadata: pid, display label, and — for runs absorbed
/// from a sweep shard — the worker that executed it (emitted as a named
/// tid-0 row so Perfetto shows worker attribution).
#[derive(Clone, Debug)]
struct Run {
    pid: u32,
    label: String,
    worker: Option<u32>,
}

/// Bounded recorder of trace events. Oldest events are dropped once `cap`
/// is reached (the drop count is reported in the emitted file's metadata).
#[derive(Debug)]
pub struct Tracer {
    cap: usize,
    /// Flat ring storage: linear until `cap` is reached, then wraps with
    /// `head` marking the oldest record.
    events: Vec<Event>,
    head: usize,
    dropped: u64,
    /// Keep 1-in-`sample` events per name (1 = keep everything).
    sample: u32,
    /// Intern table: `Event` ids index into this.
    names: Vec<&'static str>,
    stats: Vec<NameStat>,
    /// Current run ("process") id; one per simulated run.
    pid: u32,
    /// Process-name metadata, one entry per run.
    runs: Vec<Run>,
}

impl Tracer {
    /// A tracer retaining at most `cap` events.
    pub fn new(cap: usize) -> Tracer {
        Tracer {
            cap: cap.max(16),
            events: Vec::new(),
            head: 0,
            dropped: 0,
            sample: 1,
            names: Vec::new(),
            stats: Vec::new(),
            pid: 0,
            runs: Vec::new(),
        }
    }

    /// The ring capacity this tracer was created with.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Keep only 1-in-`n` events per event name (first of each window is
    /// kept, so every event family stays visible). `n = 1` (or 0) keeps
    /// everything. Per-name offered/sampled-out counts remain exact — see
    /// [`Tracer::event_stats`].
    pub fn set_sample(&mut self, n: u32) {
        self.sample = n.max(1);
    }

    /// The 1-in-N sampling rate (1 = no sampling).
    pub fn sample(&self) -> u32 {
        self.sample
    }

    /// Start a new run: a fresh Perfetto "process" labeled `label`.
    pub fn begin_run(&mut self, label: &str) {
        self.pid += 1;
        self.runs.push(Run {
            pid: self.pid,
            label: label.to_string(),
            worker: None,
        });
    }

    /// Intern `s`, scanning by pointer only — the hot path. Distinct
    /// `&'static str` instances with equal content (possible across
    /// codegen units) may get distinct ids; [`Tracer::event_stats`] and the
    /// JSON renderer aggregate by content so this is invisible outside.
    #[inline]
    fn intern(&mut self, s: &'static str) -> u16 {
        if let Some(i) = self.names.iter().position(|n| ptr_eq(n, s)) {
            return i as u16;
        }
        assert!(
            self.names.len() < usize::from(NO_KEY),
            "intern table overflow"
        );
        self.names.push(s);
        self.stats.push(NameStat::default());
        (self.names.len() - 1) as u16
    }

    /// Intern by content (pointer fast path first) — used when remapping a
    /// shard's table during [`Tracer::absorb`], where content-duplicate ids
    /// should collapse.
    fn intern_by_content(&mut self, s: &'static str) -> u16 {
        if let Some(i) = self.names.iter().position(|n| ptr_eq(n, s) || *n == s) {
            return i as u16;
        }
        self.intern(s)
    }

    /// Straighten the ring so `events` is in record order and `head == 0`.
    fn linearize(&mut self) {
        if self.head != 0 {
            self.events.rotate_left(self.head);
            self.head = 0;
        }
    }

    /// Fold a sweep shard's tracer into this one. The shard's runs keep
    /// their event order and simulated-cycle timestamps but are renumbered
    /// onto fresh pids after this tracer's own, and are tagged with the
    /// sweep `worker` that executed them (rendered as a named tid). Call in
    /// a deterministic shard order (the sweep session drains shards in work-
    /// item order) so the merged document is identical regardless of which
    /// worker finished first. Ring-drop and sampling counts add; the merged
    /// tracer's capacity grows to hold every absorbed event (no merge-time
    /// drops). The merge is a bulk extend of fixed-size records plus one
    /// small id-remap table per shard.
    pub fn absorb(&mut self, worker: u32, mut other: Tracer) {
        let base = self.pid;
        self.dropped += other.dropped;
        let mut absorbed_pids = other.pid;
        if other.runs.is_empty() && !other.events.is_empty() {
            // Events recorded without begin_run land on pid 1; synthesize a
            // process entry so they stay attributed in the merged file.
            self.runs.push(Run {
                pid: base + 1,
                label: format!("worker {worker}"),
                worker: Some(worker),
            });
            absorbed_pids = absorbed_pids.max(1);
        }
        for r in std::mem::take(&mut other.runs) {
            self.runs.push(Run {
                pid: base + r.pid,
                label: r.label,
                worker: r.worker.or(Some(worker)),
            });
        }
        // Remap the shard's intern ids through this tracer's table, folding
        // the per-name sampling stats along the way.
        let remap: Vec<u16> = other
            .names
            .iter()
            .map(|n| self.intern_by_content(n))
            .collect();
        for (i, st) in other.stats.iter().enumerate() {
            let dst = &mut self.stats[remap[i] as usize];
            dst.offered += st.offered;
            dst.sampled_out += st.sampled_out;
        }
        let map = |id: u16| -> u16 {
            if id == NO_KEY {
                NO_KEY
            } else {
                remap[id as usize]
            }
        };
        self.linearize();
        other.linearize();
        self.events.reserve(other.events.len());
        self.events.extend(other.events.iter().map(|ev| Event {
            pid: base + ev.pid.max(1),
            name: map(ev.name),
            cat: map(ev.cat),
            k1: map(ev.k1),
            k2: map(ev.k2),
            ..*ev
        }));
        self.pid = base + absorbed_pids;
        self.cap = self.cap.max(self.events.len());
    }

    #[inline]
    #[allow(clippy::too_many_arguments)] // one flat hot-path call, no public surface
    fn record(
        &mut self,
        name: &'static str,
        cat: &'static str,
        ph: u8,
        ts: u64,
        dur: u64,
        tid: u32,
        args: Args,
    ) {
        let name = self.intern(name);
        {
            let st = &mut self.stats[name as usize];
            st.offered += 1;
            if self.sample > 1 {
                // Keep the first event of each 1-in-N window per name.
                let keep = st.tick == 0;
                st.tick += 1;
                if st.tick >= self.sample {
                    st.tick = 0;
                }
                if !keep {
                    st.sampled_out += 1;
                    return;
                }
            }
        }
        let (k1, a1) = args[0].map_or((NO_KEY, 0.0), |(k, v)| (self.intern(k), v));
        let (k2, a2) = args[1].map_or((NO_KEY, 0.0), |(k, v)| (self.intern(k), v));
        let ev = Event {
            ts,
            dur,
            a1,
            a2,
            name,
            cat: self.intern(cat),
            k1,
            k2,
            pid: self.pid.max(1),
            ph,
            tid: tid.min(u32::from(u8::MAX)) as u8,
            _pad: 0,
        };
        if self.events.len() < self.cap {
            self.events.push(ev);
        } else {
            self.events[self.head] = ev;
            self.head += 1;
            if self.head == self.cap {
                self.head = 0;
            }
            self.dropped += 1;
        }
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events dropped to the ring bound (excludes sampled-out
    /// events, which are counted per name — see [`Tracer::event_stats`]).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events discarded by 1-in-N sampling across all names.
    pub fn sampled_out(&self) -> u64 {
        self.stats.iter().map(|s| s.sampled_out).sum()
    }

    /// `(offered, sampled_out)` for event `name`, aggregated by content.
    /// `offered` is the exact number of events recorded under that name
    /// before sampling — the correction identity is
    /// `true count = offered = kept + sampled_out`.
    pub fn event_stats(&self, name: &str) -> (u64, u64) {
        let mut offered = 0;
        let mut sampled_out = 0;
        for (n, st) in self.names.iter().zip(&self.stats) {
            if *n == name {
                offered += st.offered;
                sampled_out += st.sampled_out;
            }
        }
        (offered, sampled_out)
    }

    /// Events currently in the ring, oldest first.
    fn iter(&self) -> impl Iterator<Item = &Event> {
        self.events[self.head..]
            .iter()
            .chain(self.events[..self.head].iter())
    }

    /// Render the Chrome trace-event JSON document.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ns\",\"otherData\":{\"clock\":\"simulated-cycles\"");
        if self.dropped > 0 {
            out.push_str(&format!(",\"droppedEvents\":{}", self.dropped));
        }
        let sampled_out = self.sampled_out();
        if self.sample > 1 || sampled_out > 0 {
            // Exact correction metadata: per name, `offered` is the true
            // pre-sampling event count.
            out.push_str(&format!(
                ",\"sampling\":{{\"n\":{},\"sampledOut\":{}}}",
                self.sample, sampled_out
            ));
            out.push_str(",\"eventStats\":{");
            let mut first = true;
            let mut seen: Vec<&str> = Vec::new();
            for n in &self.names {
                if seen.contains(n) {
                    continue;
                }
                seen.push(n);
                let (offered, so) = self.event_stats(n);
                if !first {
                    out.push(',');
                }
                first = false;
                write_escaped(n, &mut out);
                out.push_str(&format!(
                    ":{{\"offered\":{},\"sampledOut\":{}}}",
                    offered, so
                ));
            }
            out.push('}');
        }
        out.push_str("},\"traceEvents\":[");
        let mut first = true;
        for run in &self.runs {
            let pid = run.pid;
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":"
            ));
            write_escaped(&run.label, &mut out);
            out.push_str("}}");
            if let Some(w) = run.worker {
                out.push_str(&format!(
                    ",{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\"worker {w}\"}}}}"
                ));
            }
            for (tid, tname) in [
                (track::PHASE, "fetch phase"),
                (track::TRACE, "trace lifecycle"),
                (track::OPT, "optimizer"),
                (track::MACHINE, "machine"),
            ] {
                out.push_str(&format!(
                    ",{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":"
                ));
                write_escaped(tname, &mut out);
                out.push_str("}}");
            }
        }
        for ev in self.iter() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"name\":");
            write_escaped(self.names[ev.name as usize], &mut out);
            out.push_str(",\"cat\":");
            write_escaped(self.names[ev.cat as usize], &mut out);
            out.push_str(&format!(
                ",\"ph\":\"{}\",\"ts\":{},\"pid\":{},\"tid\":{}",
                ev.ph as char, ev.ts, ev.pid, ev.tid
            ));
            if ev.ph == b'X' {
                out.push_str(&format!(",\"dur\":{}", ev.dur));
            }
            if ev.ph == b'i' {
                out.push_str(",\"s\":\"t\"");
            }
            out.push_str(",\"args\":{");
            let mut firsta = true;
            for (k, v) in [(ev.k1, ev.a1), (ev.k2, ev.a2)] {
                if k == NO_KEY {
                    continue;
                }
                if !firsta {
                    out.push(',');
                }
                firsta = false;
                write_escaped(self.names[k as usize], &mut out);
                out.push(':');
                if !v.is_finite() {
                    out.push_str("null");
                } else if v.fract() == 0.0 && v.abs() < 2f64.powi(53) {
                    out.push_str(&format!("{}", v as i64));
                } else {
                    out.push_str(&format!("{v:?}"));
                }
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }
}

thread_local! {
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static CLOCK: Cell<u64> = const { Cell::new(0) };
    static TRACER: RefCell<Option<Tracer>> = const { RefCell::new(None) };
}

/// Install a tracer as this thread's sink (replacing any previous one,
/// which is returned).
pub fn install(t: Tracer) -> Option<Tracer> {
    ACTIVE.with(|a| a.set(true));
    TRACER.with(|cell| cell.borrow_mut().replace(t))
}

/// Remove and return the installed tracer.
pub fn take() -> Option<Tracer> {
    ACTIVE.with(|a| a.set(false));
    TRACER.with(|cell| cell.borrow_mut().take())
}

/// Is a tracer installed on this thread? (single `Cell` read)
#[inline]
pub fn active() -> bool {
    ACTIVE.with(|a| a.get())
}

/// Publish the current simulated cycle; events recorded without an explicit
/// timestamp use this clock.
#[inline]
pub fn set_clock(now: u64) {
    if active() {
        CLOCK.with(|c| c.set(now));
    }
}

/// The most recently published simulated cycle.
#[inline]
pub fn clock() -> u64 {
    CLOCK.with(|c| c.get())
}

fn with<F: FnOnce(&mut Tracer)>(f: F) {
    TRACER.with(|cell| {
        if let Some(t) = cell.borrow_mut().as_mut() {
            f(t);
        }
    });
}

/// Begin a new run (fresh Perfetto process) labeled `label`.
pub fn begin_run(label: &str) {
    if active() {
        with(|t| t.begin_run(label));
    }
}

/// Record an instant event at the ambient clock.
#[inline]
pub fn instant(name: &'static str, cat: &'static str, tid: u32, args: Args) {
    if active() {
        let ts = clock();
        with(|t| t.record(name, cat, b'i', ts, 0, tid, args));
    }
}

/// Record a complete span `[start, end)` in simulated cycles.
#[inline]
pub fn complete(name: &'static str, cat: &'static str, tid: u32, start: u64, end: u64, args: Args) {
    if active() {
        with(|t| {
            t.record(name, cat, b'X', start, end.saturating_sub(start), tid, args);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn emitted_file_parses_and_has_required_fields() {
        let mut t = Tracer::new(128);
        t.begin_run("TON/gzip");
        install(t);
        set_clock(100);
        instant(
            "trace.abort",
            "trace",
            track::TRACE,
            arg1("flushed_uops", 12.0),
        );
        complete(
            "hot",
            "phase",
            track::PHASE,
            40,
            90,
            arg2("insts", 24.0, "tid", 7.0),
        );
        let t = take().unwrap();
        let doc = json::parse(&t.to_chrome_json()).unwrap();
        let events = doc.get("traceEvents").as_arr().unwrap();
        // 5 metadata events (process + 4 threads) + 2 recorded.
        assert_eq!(events.len(), 7);
        let abort = events
            .iter()
            .find(|e| e.get("name").as_str() == Some("trace.abort"))
            .unwrap();
        assert_eq!(abort.get("ph").as_str(), Some("i"));
        assert_eq!(abort.get("ts").as_u64(), Some(100));
        assert_eq!(abort.get("args").get("flushed_uops").as_u64(), Some(12));
        let hot = events
            .iter()
            .find(|e| e.get("name").as_str() == Some("hot"))
            .unwrap();
        assert_eq!(hot.get("ph").as_str(), Some("X"));
        assert_eq!(hot.get("ts").as_u64(), Some(40));
        assert_eq!(hot.get("dur").as_u64(), Some(50));
        assert_eq!(hot.get("pid").as_u64(), Some(1));
        assert_eq!(hot.get("args").get("insts").as_u64(), Some(24));
        assert_eq!(hot.get("args").get("tid").as_u64(), Some(7));
    }

    #[test]
    fn ring_bound_drops_oldest() {
        let mut t = Tracer::new(16);
        t.begin_run("r");
        install(t);
        for i in 0..40u64 {
            set_clock(i);
            instant("e", "c", track::MACHINE, NO_ARGS);
        }
        let t = take().unwrap();
        assert_eq!(t.len(), 16);
        assert_eq!(t.dropped(), 24);
        let doc = json::parse(&t.to_chrome_json()).unwrap();
        assert_eq!(doc.get("otherData").get("droppedEvents").as_u64(), Some(24));
        // The oldest surviving event is ts=24, and ring order is preserved.
        let evs = doc.get("traceEvents").as_arr().unwrap();
        let ts: Vec<u64> = evs
            .iter()
            .filter(|e| e.get("ph").as_str() == Some("i"))
            .filter_map(|e| e.get("ts").as_u64())
            .collect();
        assert_eq!(ts, (24..40).collect::<Vec<u64>>());
    }

    #[test]
    fn hooks_are_noops_when_uninstalled() {
        assert!(!active());
        set_clock(5);
        instant("x", "c", 1, NO_ARGS);
        complete("y", "c", 1, 0, 10, NO_ARGS);
        begin_run("nothing");
        assert!(take().is_none());
    }

    #[test]
    fn sampling_keeps_first_of_each_window_with_exact_accounting() {
        let mut t = Tracer::new(1024);
        t.set_sample(4);
        t.begin_run("r");
        install(t);
        for i in 0..10u64 {
            set_clock(i);
            instant("dense", "c", track::MACHINE, NO_ARGS);
        }
        instant("rare", "c", track::MACHINE, NO_ARGS);
        let t = take().unwrap();
        // dense: 10 offered, kept ceil(10/4)=3 (ts 0, 4, 8); rare: kept.
        assert_eq!(t.event_stats("dense"), (10, 7));
        assert_eq!(t.event_stats("rare"), (1, 0));
        assert_eq!(t.len(), 4);
        assert_eq!(t.sampled_out(), 7);
        assert_eq!(t.dropped(), 0, "sampling is not a ring drop");
        let doc = json::parse(&t.to_chrome_json()).unwrap();
        let ts: Vec<u64> = doc
            .get("traceEvents")
            .as_arr()
            .unwrap()
            .iter()
            .filter(|e| e.get("name").as_str() == Some("dense"))
            .filter_map(|e| e.get("ts").as_u64())
            .collect();
        assert_eq!(ts, vec![0, 4, 8]);
        let stats = doc.get("otherData").get("eventStats");
        assert_eq!(stats.get("dense").get("offered").as_u64(), Some(10));
        assert_eq!(stats.get("dense").get("sampledOut").as_u64(), Some(7));
        assert_eq!(
            doc.get("otherData").get("sampling").get("n").as_u64(),
            Some(4)
        );
    }

    #[test]
    fn absorb_folds_sampling_stats() {
        let mut shard = Tracer::new(64);
        shard.set_sample(2);
        shard.begin_run("s");
        install(shard);
        for i in 0..6u64 {
            set_clock(i);
            instant("e", "c", track::MACHINE, NO_ARGS);
        }
        let shard = take().unwrap();
        let mut base = Tracer::new(64);
        base.begin_run("main");
        base.absorb(1, shard);
        assert_eq!(base.event_stats("e"), (6, 3));
        assert_eq!(base.sampled_out(), 3);
    }

    #[test]
    fn absorb_empty_shard_is_inert() {
        let mut base = Tracer::new(64);
        base.begin_run("r");
        install(base);
        set_clock(1);
        instant("e", "c", track::MACHINE, NO_ARGS);
        let mut base = take().unwrap();
        base.absorb(0, Tracer::new(64));
        assert_eq!(base.len(), 1);
        assert_eq!(base.dropped(), 0);
        let doc = json::parse(&base.to_chrome_json()).unwrap();
        // One process, four track threads, one event; no worker tid rows.
        assert_eq!(doc.get("traceEvents").as_arr().unwrap().len(), 6);
    }

    #[test]
    fn absorb_wrapped_shard_sums_drops_and_grows_cap() {
        // Shard ring wrapped (16-deep, 40 events): its drop count must
        // survive the merge and the merged ring must not re-drop.
        let mut shard = Tracer::new(16);
        shard.begin_run("wrapped");
        install(shard);
        for i in 0..40u64 {
            set_clock(i);
            instant("e", "c", track::MACHINE, NO_ARGS);
        }
        let shard = take().unwrap();

        let mut base = Tracer::new(16);
        base.begin_run("main");
        install(base);
        for i in 0..16u64 {
            set_clock(i);
            instant("m", "c", track::MACHINE, NO_ARGS);
        }
        let mut base = take().unwrap();
        base.absorb(3, shard);
        assert_eq!(base.len(), 32, "all surviving events retained");
        assert_eq!(base.dropped(), 24, "shard's ring drops carried over");
        assert!(base.cap() >= 32, "cap grows to fit the merged stream");

        let doc = json::parse(&base.to_chrome_json()).unwrap();
        assert_eq!(doc.get("otherData").get("droppedEvents").as_u64(), Some(24));
        let evs = doc.get("traceEvents").as_arr().unwrap();
        // Absorbed events are repinned onto a fresh pid after base's runs.
        let wrapped_pid = evs
            .iter()
            .find(|e| {
                e.get("name").as_str() == Some("process_name")
                    && e.get("args").get("name").as_str() == Some("wrapped")
            })
            .and_then(|e| e.get("pid").as_u64())
            .unwrap();
        assert_eq!(wrapped_pid, 2);
        assert!(evs
            .iter()
            .filter(|e| e.get("name").as_str() == Some("e"))
            .all(|e| e.get("pid").as_u64() == Some(wrapped_pid)));
        // The absorbed shard's events come out oldest-first (ts 24..40).
        let ts: Vec<u64> = evs
            .iter()
            .filter(|e| e.get("name").as_str() == Some("e"))
            .filter_map(|e| e.get("ts").as_u64())
            .collect();
        assert_eq!(ts, (24..40).collect::<Vec<u64>>());
        // The absorbing worker shows up as a named tid on the shard's pid.
        assert!(evs.iter().any(|e| {
            e.get("name").as_str() == Some("thread_name")
                && e.get("pid").as_u64() == Some(wrapped_pid)
                && e.get("args").get("name").as_str() == Some("worker 3")
        }));
    }

    #[test]
    fn absorb_shard_without_runs_synthesizes_worker_process() {
        install(Tracer::new(32));
        set_clock(7);
        instant("stray", "c", track::MACHINE, NO_ARGS);
        let shard = take().unwrap();

        let mut base = Tracer::new(32);
        base.begin_run("main");
        base.absorb(5, shard);
        let doc = json::parse(&base.to_chrome_json()).unwrap();
        let evs = doc.get("traceEvents").as_arr().unwrap();
        let synth = evs
            .iter()
            .find(|e| {
                e.get("name").as_str() == Some("process_name")
                    && e.get("args").get("name").as_str() == Some("worker 5")
            })
            .expect("synthesized process for run-less shard");
        let pid = synth.get("pid").as_u64().unwrap();
        assert_eq!(pid, 2);
        let stray = evs
            .iter()
            .find(|e| e.get("name").as_str() == Some("stray"))
            .unwrap();
        assert_eq!(stray.get("pid").as_u64(), Some(pid));
        assert_eq!(stray.get("ts").as_u64(), Some(7));
    }

    #[test]
    fn event_record_is_48_bytes() {
        assert_eq!(std::mem::size_of::<Event>(), 48);
    }
}

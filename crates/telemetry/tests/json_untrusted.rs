//! `telemetry::json` as an *untrusted-input* codec.
//!
//! The hand-rolled parser is the wire codec of `parrot serve`, so a
//! hostile HTTP body must never panic, recurse without bound, or produce
//! a value that corrupts re-serialized output. Every rejection is a
//! structured [`ParseError`] with a byte offset. This suite covers the
//! attack-shaped corners — deep nesting, duplicate keys, truncation at
//! every byte, huge numbers, invalid UTF-16 escapes — plus a seeded
//! mutation fuzz pass over valid documents.

use parrot_telemetry::json::{parse, ParseError, Value, MAX_DEPTH};
use parrot_telemetry::rng::Xorshift64Star;

#[test]
fn nesting_is_capped_with_a_structured_error() {
    // One past the cap: rejected, not a stack overflow.
    let deep_arr = format!("{}1{}", "[".repeat(MAX_DEPTH + 1), "]".repeat(MAX_DEPTH + 1));
    let err = parse(&deep_arr).expect_err("over-deep array must be rejected");
    assert_eq!(err.message, "nesting too deep");
    let mut deep_obj = String::new();
    for _ in 0..=MAX_DEPTH {
        deep_obj.push_str("{\"k\":");
    }
    deep_obj.push('1');
    deep_obj.push_str(&"}".repeat(MAX_DEPTH + 1));
    let err = parse(&deep_obj).expect_err("over-deep object must be rejected");
    assert_eq!(err.message, "nesting too deep");
}

#[test]
fn nesting_at_the_cap_parses() {
    let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
    assert!(parse(&ok).is_ok(), "exactly MAX_DEPTH levels are fine");
}

#[test]
fn siblings_do_not_accumulate_depth() {
    // Depth is nesting, not container count: a long flat document of
    // sibling containers must parse however many there are.
    let flat = format!("[{}{{}}]", "{},".repeat(10_000));
    assert!(parse(&flat).is_ok());
}

#[test]
fn duplicate_keys_keep_the_last_value_deterministically() {
    let v = parse(r#"{"a":1,"b":2,"a":3,"a":4}"#).expect("RFC 8259 permits duplicates");
    assert_eq!(v.get("a").as_u64(), Some(4), "last duplicate wins");
    assert_eq!(v.get("b").as_u64(), Some(2));
    // And the value re-serializes with a single copy of the key.
    assert_eq!(v.to_json(), r#"{"a":4,"b":2}"#);
}

#[test]
fn every_truncation_of_a_document_errors_cleanly() {
    let doc = r#"{"job":{"kind":"sim","model":"TOW","insts":1e4,"tags":["a\u00e9","b\n"],"ok":true,"n":null,"x":-0.25}}"#;
    assert!(parse(doc).is_ok(), "the full document is valid");
    for cut in 0..doc.len() {
        if !doc.is_char_boundary(cut) {
            continue;
        }
        let err = parse(&doc[..cut]).expect_err("every prefix is incomplete");
        assert!(
            err.offset <= doc.len(),
            "offset {} in range for cut {cut}",
            err.offset
        );
        assert!(!err.message.is_empty());
        // The error formats without panicking.
        let _ = format!("{err}");
    }
}

#[test]
fn huge_numbers_are_rejected_not_infinity() {
    for bad in ["1e999", "-1e999", "123456789e999999", "1e+400"] {
        let err = parse(bad).expect_err("overflow to infinity must be rejected");
        assert_eq!(err.message, "number out of range", "{bad}");
    }
    // Values merely losing precision still parse: they are finite.
    assert!(parse("1e308").is_ok());
    assert!(parse("123456789012345678901234567890").is_ok());
    // Subnormal underflow collapses to 0.0, which is finite and fine.
    assert_eq!(parse("1e-999").unwrap().as_f64(), Some(0.0));
}

#[test]
fn malformed_number_shapes_are_rejected() {
    for bad in ["-", "+1", ".5", "1.", "1e", "1e+", "01", "0x10", "NaN", "Infinity", "--1"] {
        match parse(bad) {
            // Either a parse error…
            Err(ParseError { .. }) => {}
            // …or (for "01") the grammar may stop early and then reject
            // the trailing characters. Both are structured rejections.
            Ok(v) => panic!("{bad:?} parsed to {v:?}"),
        }
    }
}

#[test]
fn invalid_utf16_escapes_are_rejected() {
    let cases = [
        (r#""\ud800""#, "lone high surrogate"),
        (r#""\ud800\u0041""#, "high surrogate + non-surrogate"),
        (r#""\udc00""#, "lone low surrogate"),
        (r#""\ud800\ud800""#, "two high surrogates"),
        (r#""\uZZZZ""#, "non-hex escape"),
        (r#""\u12"#, "truncated escape"),
        (r#""\x41""#, "unknown escape"),
    ];
    for (doc, what) in cases {
        assert!(parse(doc).is_err(), "{what} must be rejected: {doc}");
    }
    // Escaped surrogate pairs and raw multibyte UTF-8 still work.
    assert_eq!(parse(r#""\ud83e\udd9c""#).unwrap().as_str(), Some("🦜"));
    assert_eq!(parse("\"漢字\"").unwrap().as_str(), Some("漢字"));
}

#[test]
fn control_characters_and_garbage_bodies_error_cleanly() {
    for bad in [
        "",
        "   ",
        "\u{0}",
        "{\"a\":}",
        "{\"a\"}",
        "{,}",
        "[,]",
        "[1 2]",
        "{\"a\":1,}",
        "[1,]",
        "}{",
        "][",
        "nul",
        "tru",
        "falsey",
        "\"\\\"",
        "{\"\\ud800\":1}",
    ] {
        assert!(parse(bad).is_err(), "must reject {bad:?}");
    }
}

/// Seeded mutation fuzz: take a representative wire document, flip bytes,
/// truncate, and splice; the parser must always return (Ok or structured
/// Err) without panicking, and anything it accepts must re-serialize and
/// re-parse to the same value (idempotent canonicalization — what the
/// serve result cache relies on).
#[test]
fn mutation_fuzz_never_panics_and_accepted_docs_roundtrip() {
    let seed_doc = r#"{"v":1,"kind":"sweep","insts":200000,"apps":["gcc","swim"],"rates":[0.01,0.25],"nested":{"a":[1,-2.5,3e2],"b":"x\ty"},"flag":true,"none":null}"#;
    let mut rng = Xorshift64Star::seed_from_u64(0x1a_55_0b_5e);
    let mut accepted = 0u32;
    for _ in 0..20_000 {
        let mut bytes = seed_doc.as_bytes().to_vec();
        for _ in 0..rng.usize_in(1, 9) {
            // rng ranges are half-open [lo, hi).
            match rng.u32_in(0, 4) {
                0 => {
                    // Flip a byte to an arbitrary value.
                    let i = rng.usize_in(0, bytes.len());
                    bytes[i] = rng.next_u64() as u8;
                }
                1 => {
                    // Truncate.
                    let i = rng.usize_in(0, bytes.len());
                    bytes.truncate(i);
                    if bytes.is_empty() {
                        break;
                    }
                }
                2 => {
                    // Duplicate a slice (grows nesting/keys).
                    let i = rng.usize_in(0, bytes.len());
                    let j = rng.usize_in(i, bytes.len() + 1);
                    let slice = bytes[i..j].to_vec();
                    bytes.extend_from_slice(&slice);
                }
                _ => {
                    // Insert a structural byte.
                    let i = rng.usize_in(0, bytes.len() + 1);
                    let b = [b'{', b'}', b'[', b']', b'"', b'\\', b',', b':', b'0'];
                    bytes.insert(i, b[rng.usize_in(0, b.len())]);
                }
            }
        }
        // Non-UTF-8 mutants never reach the parser in production (the
        // HTTP layer rejects them first); skip those here.
        let Ok(text) = std::str::from_utf8(&bytes) else {
            continue;
        };
        if let Ok(v) = parse(text) {
            accepted += 1;
            let once = v.to_json();
            let again = parse(&once).expect("re-parse of serialized value");
            assert_eq!(again, v, "canonicalization must be idempotent");
            assert_eq!(again.to_json(), once);
        }
    }
    assert!(accepted > 0, "some mutants should still be valid JSON");
}

/// The writer side of the codec: values built programmatically (as the
/// server does for responses) always serialize to parseable JSON, even
/// for hostile strings.
#[test]
fn writer_output_is_always_reparseable() {
    let nasty = [
        "\u{0}\u{1}\u{1f}",
        "\"\\\"\\",
        "\u{7f}\u{80}\u{2028}\u{2029}",
        "🦜\u{10FFFF}",
    ];
    for s in nasty {
        let v = Value::obj([("k", Value::Str(s.to_string()))]);
        let back = parse(&v.to_json()).expect("writer output parses");
        assert_eq!(back.get("k").as_str(), Some(s));
    }
}

//! The decoded, optimized trace cache (§2.1–2.3): set-associative storage
//! of trace frames, each holding up to 64 decoded (possibly optimized)
//! uops. Storing *decoded* traces is what lets the hot pipeline skip the
//! expensive CISC decoders entirely; storing *optimized* traces multiplies
//! the reuse of one optimization across many executions.

use crate::tid::Tid;
use parrot_isa::Uop;
use parrot_telemetry::{metrics, trace as tev};

/// The optimization state of a stored frame (gradual promotion).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum OptLevel {
    /// As constructed from decoded uops (asserts embedded, no transforms).
    Constructed,
    /// Went through the optimizer but the translation-validation gate could
    /// not prove the rewrite equivalent: the frame keeps its constructed
    /// uops and is never re-optimized (the optimizer would produce the same
    /// unprovable rewrite again).
    Demoted,
    /// Rewritten by the dynamic optimizer; the rewrite was statically
    /// validated.
    Optimized,
}

/// Verdict attached by the optimizer's translation-validation gate when a
/// frame is written back (`None` on frames the optimizer has not touched).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OptVerdict {
    /// The optimized uops were statically proven equivalent for all entry
    /// states.
    Validated,
    /// Validation was inconclusive; the frame was demoted to its
    /// unoptimized form.
    Demoted,
}

/// A stored trace: the unit of hot fetch and of atomic commit.
#[derive(Clone, Debug)]
pub struct TraceFrame {
    /// The trace identifier.
    pub tid: Tid,
    /// The uop sequence (decoded; branches converted to asserts; optimized
    /// forms after promotion).
    pub uops: Vec<Uop>,
    /// Recorded effective addresses, indexed by each memory uop's
    /// `mem_slot` (used for functional replay of optimizations).
    pub mem_addrs: Vec<u64>,
    /// The recorded instruction path: `(pc, taken)` per constituent
    /// instruction — the fetch selector compares this against the upcoming
    /// committed path to detect trace mispredictions (assert failures).
    pub path: Vec<(u64, bool)>,
    /// Macro-instructions this trace represents (IPC accounting survives
    /// uop elimination).
    pub num_insts: u32,
    /// Uop count at construction time (before optimization).
    pub orig_uops: u32,
    /// Identical units joined at selection (unroll factor).
    pub joins: u32,
    /// Optimization state.
    pub opt_level: OptLevel,
    /// Translation-validation verdict from the optimizer's gate; `None`
    /// until the optimizer has processed the frame.
    pub verdict: Option<OptVerdict>,
    /// Dynamic executions of this frame since insertion.
    pub exec_count: u64,
    /// Dynamic executions since the last optimization write-back
    /// (optimizer-utilization statistic, Fig 4.10).
    pub execs_since_opt: u64,
    /// Fetch-confidence hysteresis (2-bit): incremented when the trace
    /// fully matches the committed path, decremented on aborts. The fetch
    /// selector only streams frames with confidence ≥ 2, so persistent
    /// divergers stop being tried.
    pub live_conf: u8,
}

/// Trace cache geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceCacheConfig {
    /// Total frames (power of two × ways).
    pub sets: u32,
    /// Associativity.
    pub ways: u32,
    /// Loop-aware eviction: when a full set needs a victim, prefer the
    /// frame whose head sits at the shallowest static loop depth
    /// (ties broken by recency), protecting deep-loop traces from
    /// eviction by straight-line glue. Requires reuse hints to be
    /// installed via [`TraceCache::set_reuse_hints`]; with no hints the
    /// policy degrades to plain LRU. Off in the standard configuration.
    pub loop_aware: bool,
}

impl TraceCacheConfig {
    /// 512 frames × 64 uops, 4-way (the study's configuration).
    pub fn standard() -> TraceCacheConfig {
        TraceCacheConfig {
            sets: 128,
            ways: 4,
            loop_aware: false,
        }
    }

    /// Total frame capacity.
    pub fn frames(&self) -> u32 {
        self.sets * self.ways
    }
}

/// Cumulative trace-cache statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceCacheStats {
    /// Total fetch-time lookups.
    pub lookups: u64,
    /// Lookups that found a frame.
    pub hits: u64,
    /// Frames inserted.
    pub inserts: u64,
    /// Resident frames displaced to make room.
    pub evictions: u64,
    /// In-place upgrades of a frame to its optimized form.
    pub optimized_writebacks: u64,
}

#[derive(Clone, Debug)]
struct Slot {
    frame: Option<TraceFrame>,
    stamp: u64,
    /// Content fingerprint of the stored uops, written at insert/write-back
    /// time when integrity checking is armed (0 otherwise). A mismatch at
    /// fetch means the stored encoding was corrupted after write.
    tag: u64,
}

/// The set-associative trace cache.
#[derive(Clone, Debug)]
pub struct TraceCache {
    cfg: TraceCacheConfig,
    slots: Vec<Slot>,
    tick: u64,
    stats: TraceCacheStats,
    /// When armed, every insert/write-back records a uop-content fingerprint
    /// and [`TraceCache::verify_integrity`] checks it. Off by default: the
    /// fault-free machine pays zero overhead and behaves bit-identically.
    integrity: bool,
    /// Frames evicted after optimization, with their reuse counts — feeds
    /// the optimizer-utilization statistic even for evicted traces.
    pub retired_opt_reuse: Vec<u64>,
    /// Static loop-depth hints as sorted, non-overlapping pc regions
    /// `(start, end_exclusive, depth)` — produced by the analysis crate's
    /// `eviction_hints`. Only consulted when `cfg.loop_aware` is set.
    hints: Vec<(u64, u64, u8)>,
}

impl TraceCache {
    /// An empty trace cache.
    ///
    /// # Panics
    /// Panics unless `sets` is a power of two.
    pub fn new(cfg: TraceCacheConfig) -> TraceCache {
        assert!(cfg.sets.is_power_of_two(), "sets must be a power of two");
        TraceCache {
            cfg,
            slots: (0..cfg.sets * cfg.ways)
                .map(|_| Slot {
                    frame: None,
                    stamp: 0,
                    tag: 0,
                })
                .collect(),
            tick: 0,
            stats: TraceCacheStats::default(),
            integrity: false,
            retired_opt_reuse: Vec::new(),
            hints: Vec::new(),
        }
    }

    /// Install static loop-depth hints for loop-aware eviction: sorted,
    /// non-overlapping `(start_pc, end_pc_exclusive, depth)` regions.
    /// Regions are re-sorted defensively; lookups binary-search them.
    pub fn set_reuse_hints(&mut self, mut hints: Vec<(u64, u64, u8)>) {
        hints.sort_unstable();
        self.hints = hints;
    }

    /// Static loop depth of the block containing `pc` (0 when unknown).
    pub fn depth_hint(&self, pc: u64) -> u8 {
        let i = self.hints.partition_point(|&(start, _, _)| start <= pc);
        match i.checked_sub(1).and_then(|j| self.hints.get(j)) {
            Some(&(_, end, depth)) if pc < end => depth,
            _ => 0,
        }
    }

    /// Arm or disarm storage-integrity tagging. Armed caches fingerprint
    /// uops on insert/write-back so later corruption of the stored encoding
    /// is detectable; disarmed caches (the default) skip all tag work.
    pub fn set_integrity(&mut self, on: bool) {
        self.integrity = on;
    }

    fn tag_for(integrity: bool, frame: &TraceFrame) -> u64 {
        if integrity {
            parrot_isa::corrupt::fingerprint(&frame.uops)
        } else {
            0
        }
    }

    /// Does the stored encoding of `tid` still match the fingerprint taken
    /// when it was written? Vacuously true when integrity tagging is
    /// disarmed or the frame is absent.
    pub fn verify_integrity(&self, tid: &Tid) -> bool {
        if !self.integrity {
            return true;
        }
        self.slots[self.set_range(tid)]
            .iter()
            .find(|s| s.frame.as_ref().is_some_and(|f| f.tid == *tid))
            .is_none_or(|s| {
                let f = s.frame.as_ref().expect("matched above");
                parrot_isa::corrupt::fingerprint(&f.uops) == s.tag
            })
    }

    /// The configuration.
    pub fn config(&self) -> &TraceCacheConfig {
        &self.cfg
    }

    /// Statistics so far.
    pub fn stats(&self) -> &TraceCacheStats {
        &self.stats
    }

    fn set_range(&self, tid: &Tid) -> std::ops::Range<usize> {
        self.set_range_pc(tid.start_pc)
    }

    /// Sets are indexed by the trace *start address* (like a conventional
    /// trace cache): path variants of the same start compete within one set
    /// and the fetch selector chooses among them.
    fn set_range_pc(&self, start_pc: u64) -> std::ops::Range<usize> {
        let mut x = start_pc.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x ^= x >> 29;
        let set = (x % u64::from(self.cfg.sets)) as usize;
        let base = set * self.cfg.ways as usize;
        base..base + self.cfg.ways as usize
    }

    /// All resident frames starting at `start_pc` (path variants), most
    /// recently used first.
    pub fn variants_at(&self, start_pc: u64) -> Vec<&TraceFrame> {
        let mut v: Vec<(&TraceFrame, u64)> = self.slots[self.set_range_pc(start_pc)]
            .iter()
            .filter_map(|s| {
                s.frame
                    .as_ref()
                    .filter(|f| f.tid.start_pc == start_pc)
                    .map(|f| (f, s.stamp))
            })
            .collect();
        v.sort_by_key(|(_, stamp)| std::cmp::Reverse(*stamp));
        v.into_iter().map(|(f, _)| f).collect()
    }

    /// Look up a frame by TID, refreshing recency and bumping execution
    /// counters on hit.
    pub fn fetch(&mut self, tid: &Tid) -> Option<&TraceFrame> {
        self.tick += 1;
        self.stats.lookups += 1;
        let range = self.set_range(tid);
        let tick = self.tick;
        let slot = self.slots[range]
            .iter_mut()
            .find(|s| s.frame.as_ref().is_some_and(|f| f.tid == *tid))?;
        slot.stamp = tick;
        let f = slot.frame.as_mut().expect("matched above");
        f.exec_count += 1;
        if f.opt_level == OptLevel::Optimized {
            f.execs_since_opt += 1;
        }
        self.stats.hits += 1;
        Some(slot.frame.as_ref().expect("present"))
    }

    /// Probe without updating counters (used by background phases).
    pub fn contains(&self, tid: &Tid) -> bool {
        self.slots[self.set_range(tid)]
            .iter()
            .any(|s| s.frame.as_ref().is_some_and(|f| f.tid == *tid))
    }

    /// Read-only access to a resident frame.
    pub fn peek(&self, tid: &Tid) -> Option<&TraceFrame> {
        self.slots[self.set_range(tid)]
            .iter()
            .find_map(|s| s.frame.as_ref().filter(|f| f.tid == *tid))
    }

    /// Insert a newly constructed frame, evicting the LRU way if needed.
    pub fn insert(&mut self, frame: TraceFrame) {
        self.tick += 1;
        let new_uops = frame.uops.len();
        let range = self.set_range(&frame.tid);
        let tick = self.tick;
        // Reuse an existing slot for the same TID, else an empty way, else
        // the victim: plain LRU, or — with loop-aware eviction — the frame
        // at the shallowest static loop depth (LRU among equals), so
        // deep-loop traces survive pressure from straight-line glue.
        let idx = {
            let slots = &self.slots[range.clone()];
            slots
                .iter()
                .position(|s| s.frame.as_ref().is_some_and(|f| f.tid == frame.tid))
                .or_else(|| slots.iter().position(|s| s.frame.is_none()))
                .unwrap_or_else(|| {
                    if self.cfg.loop_aware {
                        slots
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, s)| {
                                let depth = s
                                    .frame
                                    .as_ref()
                                    .map_or(0, |f| self.depth_hint(f.tid.start_pc));
                                (depth, s.stamp)
                            })
                            .map(|(i, _)| i)
                            .expect("nonzero associativity")
                    } else {
                        slots
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, s)| s.stamp)
                            .map(|(i, _)| i)
                            .expect("nonzero associativity")
                    }
                })
        };
        let slots = &mut self.slots[range];
        if let Some(old) = &slots[idx].frame {
            if old.tid != frame.tid {
                self.stats.evictions += 1;
                tev::instant(
                    "tc.evict",
                    "trace",
                    tev::track::TRACE,
                    tev::arg2(
                        "uops",
                        old.uops.len() as f64,
                        "exec_count",
                        old.exec_count as f64,
                    ),
                );
                if old.opt_level == OptLevel::Optimized {
                    self.retired_opt_reuse.push(old.execs_since_opt);
                }
            }
        }
        slots[idx] = Slot {
            tag: Self::tag_for(self.integrity, &frame),
            frame: Some(frame),
            stamp: tick,
        };
        self.stats.inserts += 1;
        if tev::active() || metrics::active() {
            let resident = self.len();
            tev::instant(
                "tc.insert",
                "trace",
                tev::track::TRACE,
                tev::arg2("uops", new_uops as f64, "resident", resident as f64),
            );
            metrics::gauge_set("tc_occupancy", resident as f64);
        }
    }

    /// Replace a resident frame with the optimizer's write-back: either its
    /// validated optimized form or its demoted (unoptimized) form. Returns
    /// false if the frame was evicted in the meantime.
    pub fn replace_optimized(&mut self, frame: TraceFrame) -> bool {
        debug_assert!(
            matches!(
                (frame.opt_level, frame.verdict),
                (OptLevel::Optimized, Some(OptVerdict::Validated))
                    | (OptLevel::Demoted, Some(OptVerdict::Demoted))
            ),
            "optimizer write-back must carry a matching validation verdict \
             (got {:?} / {:?})",
            frame.opt_level,
            frame.verdict,
        );
        let range = self.set_range(&frame.tid);
        let tick = self.tick;
        let integrity = self.integrity;
        if let Some(slot) = self.slots[range]
            .iter_mut()
            .find(|s| s.frame.as_ref().is_some_and(|f| f.tid == frame.tid))
        {
            slot.tag = Self::tag_for(integrity, &frame);
            slot.frame = Some(frame);
            slot.stamp = tick;
            self.stats.optimized_writebacks += 1;
            true
        } else {
            false
        }
    }

    /// Drop a resident frame (fault recovery or spurious invalidation).
    /// Returns false if it was not resident. Counts as an eviction and,
    /// for optimized frames, records reuse like any other eviction.
    pub fn invalidate(&mut self, tid: &Tid) -> bool {
        let range = self.set_range(tid);
        let Some(slot) = self.slots[range]
            .iter_mut()
            .find(|s| s.frame.as_ref().is_some_and(|f| f.tid == *tid))
        else {
            return false;
        };
        let old = slot.frame.take().expect("matched above");
        slot.tag = 0;
        if old.opt_level == OptLevel::Optimized {
            self.retired_opt_reuse.push(old.execs_since_opt);
        }
        self.stats.evictions += 1;
        true
    }

    /// Invalidate the `n`-th resident frame in slot order (wrapping), as a
    /// deterministic stand-in for "a random frame". Returns its TID, or
    /// `None` when the cache is empty.
    pub fn invalidate_nth(&mut self, n: usize) -> Option<Tid> {
        let resident = self.len();
        if resident == 0 {
            return None;
        }
        let tid = self
            .frames()
            .nth(n % resident)
            .map(|f| f.tid)
            .expect("resident count checked");
        self.invalidate(&tid);
        Some(tid)
    }

    /// Eviction storm: drop every frame in `n_sets` consecutive sets
    /// starting at `first_set` (wrapping). Returns the number of frames
    /// dropped.
    pub fn storm(&mut self, first_set: u64, n_sets: u32) -> usize {
        let mut dropped = 0;
        for s in 0..u64::from(n_sets.min(self.cfg.sets)) {
            let set = ((first_set + s) % u64::from(self.cfg.sets)) as usize;
            let base = set * self.cfg.ways as usize;
            for slot in &mut self.slots[base..base + self.cfg.ways as usize] {
                if let Some(old) = slot.frame.take() {
                    slot.tag = 0;
                    if old.opt_level == OptLevel::Optimized {
                        self.retired_opt_reuse.push(old.execs_since_opt);
                    }
                    self.stats.evictions += 1;
                    dropped += 1;
                }
            }
        }
        dropped
    }

    /// Corrupt one uop of the resident frame for `tid` in place — modelling
    /// a storage bit-flip — *without* refreshing the integrity tag, so an
    /// armed cache will detect the damage. The uop index and mutation are
    /// derived from `r`. Returns false when nothing could be corrupted
    /// (frame absent or no mutable encoding bits).
    pub fn corrupt_uop_in(&mut self, tid: &Tid, r: u64) -> bool {
        let range = self.set_range(tid);
        let Some(frame) = self.slots[range]
            .iter_mut()
            .find_map(|s| s.frame.as_mut().filter(|f| f.tid == *tid))
        else {
            return false;
        };
        if frame.uops.is_empty() {
            return false;
        }
        let idx = (r % frame.uops.len() as u64) as usize;
        parrot_isa::corrupt::corrupt_uop(&mut frame.uops[idx], r >> 16).is_some()
    }

    /// Flip one recorded path direction of the resident frame for `tid` —
    /// modelling delivery of a stale trace whose recorded path no longer
    /// matches the program. The fetch-time path match then aborts the trace.
    /// Returns the flipped path index (the caller must treat even an
    /// accidental full match as an abort at that position: the frame's
    /// compiled uops still assert the *original* direction there), or
    /// `None` when the frame is absent or has an empty path.
    pub fn corrupt_path_in(&mut self, tid: &Tid, r: u64) -> Option<usize> {
        let range = self.set_range(tid);
        let frame = self.slots[range]
            .iter_mut()
            .find_map(|s| s.frame.as_mut().filter(|f| f.tid == *tid))?;
        if frame.path.is_empty() {
            return None;
        }
        let idx = (r % frame.path.len() as u64) as usize;
        frame.path[idx].1 = !frame.path[idx].1;
        Some(idx)
    }

    /// Record a full-path match for `tid` (raises fetch confidence).
    pub fn on_full_match(&mut self, tid: &Tid) {
        let range = self.set_range(tid);
        if let Some(slot) = self.slots[range]
            .iter_mut()
            .find(|s| s.frame.as_ref().is_some_and(|f| f.tid == *tid))
        {
            let f = slot.frame.as_mut().expect("present");
            f.live_conf = (f.live_conf + 1).min(3);
        }
    }

    /// The background phase observed this exact path executing (cold):
    /// restore fetch confidence — the recorded path is live again.
    pub fn revalidate(&mut self, tid: &Tid) {
        let range = self.set_range(tid);
        if let Some(slot) = self.slots[range]
            .iter_mut()
            .find(|s| s.frame.as_ref().is_some_and(|f| f.tid == *tid))
        {
            let f = slot.frame.as_mut().expect("present");
            f.live_conf = (f.live_conf + 1).min(3);
        }
    }

    /// Record an abort for `tid` (lowers fetch confidence).
    pub fn on_abort(&mut self, tid: &Tid) {
        let range = self.set_range(tid);
        if let Some(slot) = self.slots[range]
            .iter_mut()
            .find(|s| s.frame.as_ref().is_some_and(|f| f.tid == *tid))
        {
            let f = slot.frame.as_mut().expect("present");
            f.live_conf = f.live_conf.saturating_sub(1);
        }
    }

    /// Iterate over every resident frame.
    pub fn frames(&self) -> impl Iterator<Item = &TraceFrame> {
        self.slots.iter().filter_map(|s| s.frame.as_ref())
    }

    /// Resident frame count.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.frame.is_some()).count()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(pc: u64) -> TraceFrame {
        TraceFrame {
            tid: Tid::new(pc),
            uops: vec![],
            mem_addrs: vec![],
            path: vec![],
            num_insts: 4,
            orig_uops: 6,
            joins: 1,
            opt_level: OptLevel::Constructed,
            verdict: None,
            exec_count: 0,
            execs_since_opt: 0,
            live_conf: 2,
        }
    }

    #[test]
    fn insert_then_fetch_hits_and_counts() {
        let mut tc = TraceCache::new(TraceCacheConfig::standard());
        tc.insert(frame(0x100));
        assert!(tc.contains(&Tid::new(0x100)));
        let f = tc.fetch(&Tid::new(0x100)).unwrap();
        assert_eq!(f.exec_count, 1);
        tc.fetch(&Tid::new(0x100));
        assert_eq!(tc.peek(&Tid::new(0x100)).unwrap().exec_count, 2);
        assert_eq!(tc.stats().hits, 2);
    }

    #[test]
    fn miss_on_absent_tid() {
        let mut tc = TraceCache::new(TraceCacheConfig::standard());
        assert!(tc.fetch(&Tid::new(0x200)).is_none());
        assert_eq!(tc.stats().lookups, 1);
        assert_eq!(tc.stats().hits, 0);
    }

    #[test]
    fn lru_eviction_within_set() {
        let cfg = TraceCacheConfig {
            sets: 1,
            ways: 2,
            loop_aware: false,
        };
        let mut tc = TraceCache::new(cfg);
        tc.insert(frame(1));
        tc.insert(frame(2));
        tc.fetch(&Tid::new(1)); // 2 becomes LRU
        tc.insert(frame(3)); // evicts 2
        assert!(tc.contains(&Tid::new(1)));
        assert!(!tc.contains(&Tid::new(2)));
        assert_eq!(tc.stats().evictions, 1);
        assert_eq!(tc.len(), 2);
    }

    #[test]
    fn loop_aware_eviction_protects_deep_loop_frames() {
        let cfg = TraceCacheConfig {
            sets: 1,
            ways: 2,
            loop_aware: true,
        };
        let mut tc = TraceCache::new(cfg);
        // pc 1 sits in a depth-3 loop region; pc 2 is straight-line code.
        tc.set_reuse_hints(vec![(0, 2, 3)]);
        tc.insert(frame(1)); // deep
        tc.insert(frame(2)); // shallow
        tc.fetch(&Tid::new(2)); // shallow frame is MRU; deep frame is LRU
        tc.insert(frame(3)); // LRU would evict 1; loop-aware evicts 2
        assert!(tc.contains(&Tid::new(1)), "deep-loop frame survives");
        assert!(!tc.contains(&Tid::new(2)), "shallow frame is the victim");
        assert_eq!(tc.stats().evictions, 1);
    }

    #[test]
    fn loop_aware_without_hints_degrades_to_lru() {
        let cfg = TraceCacheConfig {
            sets: 1,
            ways: 2,
            loop_aware: true,
        };
        let mut tc = TraceCache::new(cfg);
        tc.insert(frame(1));
        tc.insert(frame(2));
        tc.fetch(&Tid::new(1)); // 2 becomes LRU
        tc.insert(frame(3)); // all depths 0: plain LRU evicts 2
        assert!(tc.contains(&Tid::new(1)));
        assert!(!tc.contains(&Tid::new(2)));
    }

    #[test]
    fn depth_hint_lookup_respects_region_bounds() {
        let mut tc = TraceCache::new(TraceCacheConfig::standard());
        tc.set_reuse_hints(vec![(0x100, 0x110, 2), (0x200, 0x240, 1)]);
        assert_eq!(tc.depth_hint(0x0ff), 0);
        assert_eq!(tc.depth_hint(0x100), 2);
        assert_eq!(tc.depth_hint(0x10f), 2);
        assert_eq!(tc.depth_hint(0x110), 0, "end is exclusive");
        assert_eq!(tc.depth_hint(0x23f), 1);
        assert_eq!(tc.depth_hint(0x240), 0);
    }

    #[test]
    fn optimized_writeback_replaces_in_place() {
        let mut tc = TraceCache::new(TraceCacheConfig::standard());
        tc.insert(frame(0x300));
        let mut opt = frame(0x300);
        opt.opt_level = OptLevel::Optimized;
        opt.verdict = Some(OptVerdict::Validated);
        opt.uops = vec![];
        assert!(tc.replace_optimized(opt));
        assert_eq!(
            tc.peek(&Tid::new(0x300)).unwrap().opt_level,
            OptLevel::Optimized
        );
        assert_eq!(tc.stats().optimized_writebacks, 1);
        // A demoted write-back is also accepted (keeps constructed uops).
        let mut dem = frame(0x300);
        dem.opt_level = OptLevel::Demoted;
        dem.verdict = Some(OptVerdict::Demoted);
        assert!(tc.replace_optimized(dem));
        assert_eq!(
            tc.peek(&Tid::new(0x300)).unwrap().opt_level,
            OptLevel::Demoted
        );
        // Write-back to an evicted TID fails gracefully.
        let mut gone = frame(0x999);
        gone.opt_level = OptLevel::Optimized;
        gone.verdict = Some(OptVerdict::Validated);
        assert!(!tc.replace_optimized(gone));
    }

    #[test]
    fn same_tid_reinsert_does_not_evict_neighbors() {
        let cfg = TraceCacheConfig {
            sets: 1,
            ways: 2,
            loop_aware: false,
        };
        let mut tc = TraceCache::new(cfg);
        tc.insert(frame(1));
        tc.insert(frame(2));
        tc.insert(frame(1)); // refresh, not evict
        assert!(tc.contains(&Tid::new(1)));
        assert!(tc.contains(&Tid::new(2)));
        assert_eq!(tc.stats().evictions, 0);
    }

    #[test]
    fn integrity_detects_storage_corruption() {
        use parrot_isa::{AluOp, Reg, Uop};
        let mut tc = TraceCache::new(TraceCacheConfig::standard());
        tc.set_integrity(true);
        let mut f = frame(0x500);
        f.uops = vec![Uop::alu(AluOp::Add, Reg::int(0), Reg::int(1), Reg::int(2))];
        tc.insert(f);
        let tid = Tid::new(0x500);
        assert!(tc.verify_integrity(&tid), "clean frame verifies");
        assert!(tc.corrupt_uop_in(&tid, 12345));
        assert!(!tc.verify_integrity(&tid), "bit-flip detected");
        assert!(tc.invalidate(&tid));
        assert!(!tc.contains(&tid));
        assert!(tc.verify_integrity(&tid), "absent frame is vacuously clean");
        assert!(!tc.invalidate(&tid), "double invalidate is a no-op");
    }

    #[test]
    fn disarmed_cache_skips_integrity() {
        use parrot_isa::{AluOp, Reg, Uop};
        let mut tc = TraceCache::new(TraceCacheConfig::standard());
        let mut f = frame(0x600);
        f.uops = vec![Uop::alu(AluOp::Add, Reg::int(0), Reg::int(1), Reg::int(2))];
        tc.insert(f);
        let tid = Tid::new(0x600);
        assert!(tc.corrupt_uop_in(&tid, 7));
        assert!(tc.verify_integrity(&tid), "disarmed: always clean");
    }

    #[test]
    fn invalidate_nth_and_storm_drop_frames() {
        let cfg = TraceCacheConfig {
            sets: 4,
            ways: 2,
            loop_aware: false,
        };
        let mut tc = TraceCache::new(cfg);
        for pc in 1..=6u64 {
            tc.insert(frame(pc));
        }
        let before = tc.len();
        let victim = tc.invalidate_nth(3).expect("resident frames exist");
        assert_eq!(tc.len(), before - 1);
        assert!(!tc.contains(&victim));
        let dropped = tc.storm(0, 4);
        assert_eq!(dropped, before - 1, "storm over all sets empties the cache");
        assert!(tc.is_empty());
        assert!(
            tc.invalidate_nth(0).is_none(),
            "empty cache: nothing to drop"
        );
        assert_eq!(tc.storm(0, 4), 0);
    }

    #[test]
    fn corrupt_path_flips_one_direction() {
        let mut tc = TraceCache::new(TraceCacheConfig::standard());
        let mut f = frame(0x700);
        f.path = vec![(0x700, true), (0x704, false)];
        tc.insert(f);
        let tid = Tid::new(0x700);
        assert_eq!(tc.corrupt_path_in(&tid, 0), Some(0));
        assert_eq!(tc.peek(&tid).unwrap().path[0], (0x700, false));
        // Empty-path and absent frames cannot be corrupted.
        tc.insert(frame(0x800));
        assert_eq!(tc.corrupt_path_in(&Tid::new(0x800), 0), None);
        assert_eq!(tc.corrupt_path_in(&Tid::new(0x999), 0), None);
        assert!(!tc.corrupt_uop_in(&Tid::new(0x999), 0));
    }

    #[test]
    fn evicted_optimized_frames_record_reuse() {
        let cfg = TraceCacheConfig {
            sets: 1,
            ways: 1,
            loop_aware: false,
        };
        let mut tc = TraceCache::new(cfg);
        let mut f = frame(1);
        f.opt_level = OptLevel::Optimized;
        tc.insert(f);
        for _ in 0..5 {
            tc.fetch(&Tid::new(1));
        }
        tc.insert(frame(2)); // evicts the optimized frame
        assert_eq!(tc.retired_opt_reuse, vec![5]);
    }
}

#[cfg(test)]
mod confidence_tests {
    use super::*;

    fn frame(pc: u64, dirs: &[bool]) -> TraceFrame {
        let mut tid = Tid::new(pc);
        for d in dirs {
            tid.push_dir(*d);
        }
        TraceFrame {
            tid,
            uops: vec![],
            mem_addrs: vec![],
            path: vec![],
            num_insts: 4,
            orig_uops: 6,
            joins: 1,
            opt_level: OptLevel::Constructed,
            verdict: None,
            exec_count: 0,
            execs_since_opt: 0,
            live_conf: 1,
        }
    }

    #[test]
    fn variants_share_a_set_and_sort_by_recency() {
        let mut tc = TraceCache::new(TraceCacheConfig::standard());
        tc.insert(frame(0x100, &[true]));
        tc.insert(frame(0x100, &[false]));
        tc.insert(frame(0x200, &[true]));
        let v = tc.variants_at(0x100);
        assert_eq!(v.len(), 2, "both path variants of 0x100");
        assert!(v.iter().all(|f| f.tid.start_pc == 0x100));
        // Touch the older variant: it becomes MRU.
        let t1 = v[1].tid;
        tc.fetch(&t1);
        let v2 = tc.variants_at(0x100);
        assert_eq!(v2[0].tid, t1, "MRU first");
        assert!(tc.variants_at(0x300).is_empty());
    }

    #[test]
    fn confidence_lifecycle() {
        let mut tc = TraceCache::new(TraceCacheConfig::standard());
        let f = frame(0x400, &[true]);
        let tid = f.tid;
        tc.insert(f);
        assert_eq!(tc.peek(&tid).expect("resident").live_conf, 1);
        tc.revalidate(&tid);
        assert_eq!(tc.peek(&tid).expect("resident").live_conf, 2);
        tc.on_full_match(&tid);
        assert_eq!(
            tc.peek(&tid).expect("resident").live_conf,
            3,
            "saturates at 3 next"
        );
        tc.on_full_match(&tid);
        assert_eq!(tc.peek(&tid).expect("resident").live_conf, 3);
        tc.on_abort(&tid);
        assert_eq!(tc.peek(&tid).expect("resident").live_conf, 2);
        tc.on_abort(&tid);
        tc.on_abort(&tid);
        tc.on_abort(&tid);
        assert_eq!(tc.peek(&tid).expect("resident").live_conf, 0, "floors at 0");
        // Operations on absent TIDs are no-ops.
        tc.on_abort(&Tid::new(0x999));
        tc.revalidate(&Tid::new(0x999));
    }
}

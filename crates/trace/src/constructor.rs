//! Trace construction: turns a selected [`TraceCandidate`] into an
//! executable [`TraceFrame`] of decoded uops with atomic-trace semantics —
//! conditional branches become **assert** uops carrying their recorded
//! direction, unconditional control transfers dissolve (control flow inside
//! an atomic trace is implicit), and memory uops get stable slots into the
//! recorded effective-address sequence.

use crate::cache::{OptLevel, TraceFrame};
use crate::selection::TraceCandidate;
use parrot_isa::{Uop, UopKind};
use parrot_telemetry::{metrics, profile, trace as tev};
use parrot_workloads::DecodedProgram;

/// Build an executable frame from a candidate.
///
/// Per-uop transformations:
/// * `Branch(cond)` → `Assert { cond, expect: recorded }` (branch
///   promotion; a failed assert aborts the trace),
/// * `Jump` and `JumpInd` are elided — within an atomic trace the next
///   instruction is known statically, and a return's target is implied by
///   its in-trace context (§2.2),
/// * memory uops receive a `mem_slot` index into the frame's recorded
///   address sequence (used by functional replay and by optimization
///   verification).
pub fn construct_frame(cand: &TraceCandidate, decoded: &DecodedProgram) -> TraceFrame {
    let _prof = profile::scope("trace.construct");
    let mut uops: Vec<Uop> = Vec::with_capacity(cand.num_uops as usize);
    let mut mem_addrs: Vec<u64> = Vec::new();
    for (ordinal, ci) in cand.insts.iter().enumerate() {
        for u in decoded.uops(ci.inst) {
            let mut u = u.clone();
            u.inst_idx = ordinal as u32;
            match u.kind {
                UopKind::Branch(cond) => {
                    u.kind = UopKind::Assert {
                        cond,
                        expect: ci.taken,
                    };
                }
                UopKind::Jump | UopKind::JumpInd => continue,
                _ => {}
            }
            if u.is_mem() {
                u.mem_slot = Some(mem_addrs.len() as u16);
                mem_addrs.push(ci.eff_addr);
            }
            uops.push(u);
        }
    }
    let orig_uops = uops.len() as u32;
    let num_insts = cand.insts.len() as u32;
    tev::instant(
        "trace.construct",
        "trace",
        tev::track::TRACE,
        tev::arg2("insts", f64::from(num_insts), "uops", f64::from(orig_uops)),
    );
    metrics::hist_record("trace_len_insts", u64::from(num_insts));
    metrics::hist_record("trace_len_uops", u64::from(orig_uops));
    TraceFrame {
        tid: cand.tid,
        uops,
        mem_addrs,
        path: cand.insts.iter().map(|ci| (ci.pc, ci.taken)).collect(),
        num_insts,
        orig_uops,
        joins: cand.joins,
        opt_level: OptLevel::Constructed,
        verdict: None,
        exec_count: 0,
        execs_since_opt: 0,
        live_conf: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection::{SelectionConfig, TraceSelector};
    use parrot_workloads::{generate_program, AppProfile, ExecutionEngine, Suite};

    fn frames_from_stream(n: usize) -> (Vec<TraceFrame>, parrot_workloads::Program) {
        let prog = generate_program(&AppProfile::suite_base(Suite::SpecInt));
        let decoded = prog.decode_all();
        let mut sel = TraceSelector::new(SelectionConfig::default());
        let mut cands = Vec::new();
        for (seq, d) in ExecutionEngine::new(&prog).take(n).enumerate() {
            let kind = prog.inst(d.inst).kind;
            sel.step(&d, &kind, seq as u64, &mut cands);
        }
        sel.flush(&mut cands);
        let frames = cands.iter().map(|c| construct_frame(c, &decoded)).collect();
        (frames, prog)
    }

    #[test]
    fn frames_have_asserts_not_branches() {
        let (frames, _) = frames_from_stream(20_000);
        assert!(frames.len() > 50);
        for f in &frames {
            let mut asserts = 0u8;
            for u in &f.uops {
                assert!(
                    !matches!(
                        u.kind,
                        UopKind::Branch(_) | UopKind::Jump | UopKind::JumpInd
                    ),
                    "raw control uop left in frame"
                );
                if matches!(u.kind, UopKind::Assert { .. }) {
                    asserts += 1;
                }
            }
            assert_eq!(
                asserts, f.tid.num_branches,
                "one assert per recorded direction"
            );
        }
    }

    #[test]
    fn assert_directions_match_tid() {
        let (frames, _) = frames_from_stream(20_000);
        for f in &frames {
            let mut i = 0u8;
            for u in &f.uops {
                if let UopKind::Assert { expect, .. } = u.kind {
                    assert_eq!(expect, f.tid.dir(i), "assert expectation mirrors TID bit");
                    i += 1;
                }
            }
        }
    }

    #[test]
    fn mem_slots_are_dense_and_addressed() {
        let (frames, _) = frames_from_stream(20_000);
        for f in &frames {
            let mut next = 0u16;
            for u in &f.uops {
                if u.is_mem() {
                    assert_eq!(u.mem_slot, Some(next), "mem slots must be dense in order");
                    next += 1;
                } else {
                    assert_eq!(u.mem_slot, None);
                }
            }
            assert_eq!(usize::from(next), f.mem_addrs.len());
        }
    }

    #[test]
    fn construction_compresses_unconditional_control() {
        let (frames, _) = frames_from_stream(20_000);
        let total_orig: u32 = frames.iter().map(|f| f.orig_uops).sum();
        let total_decoded: u32 = frames
            .iter()
            .map(|f| f.num_insts) // lower bound: ≥1 uop per inst
            .sum();
        assert!(total_orig >= total_decoded, "sanity: uops ≥ insts");
        // At least some frames contain elided jumps (call-heavy code).
        let any_inst_gap = frames.iter().any(|f| {
            f.uops.len() < f.num_insts as usize * 2 // loose: drops happened somewhere
        });
        assert!(any_inst_gap);
    }

    #[test]
    fn inst_idx_is_trace_local_and_monotone() {
        let (frames, _) = frames_from_stream(20_000);
        for f in &frames {
            let mut prev = 0;
            for u in &f.uops {
                assert!(u.inst_idx >= prev);
                assert!((u.inst_idx as usize) < f.num_insts as usize);
                prev = u.inst_idx;
            }
        }
    }
}

//! The gradual filtering mechanism (§2.3): small set-associative counter
//! caches that identify frequent (**hot**) and most-frequent (**blazing**)
//! TIDs. Only hot TIDs are constructed into the trace cache; only blazing
//! traces are handed to the optimizer. This selectivity is PARROT's key
//! power-awareness lever.

use parrot_telemetry::trace as tev;

/// Counter-filter geometry and threshold.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FilterConfig {
    /// Number of sets (power of two).
    pub sets: u32,
    /// Associativity.
    pub ways: u32,
    /// Count at which a TID qualifies.
    pub threshold: u32,
}

impl FilterConfig {
    /// The hot filter: TID must complete 12 times before construction.
    pub fn hot() -> FilterConfig {
        FilterConfig {
            sets: 256,
            ways: 4,
            threshold: 12,
        }
    }

    /// The blazing filter: trace must execute 48 times before optimization
    /// (the paper notes a "relatively high blazing threshold" amortizes the
    /// optimizer).
    pub fn blazing() -> FilterConfig {
        FilterConfig {
            sets: 128,
            ways: 4,
            threshold: 48,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    key: u64,
    count: u32,
    stamp: u64,
}

/// A small set-associative cache of saturating access counters keyed by TID.
#[derive(Clone, Debug)]
pub struct CounterFilter {
    cfg: FilterConfig,
    entries: Vec<Entry>,
    tick: u64,
    /// Number of counter evictions (capacity pressure indicator).
    pub evictions: u64,
}

impl CounterFilter {
    /// An empty filter.
    ///
    /// # Panics
    /// Panics unless `sets` is a power of two and `threshold > 0`.
    pub fn new(cfg: FilterConfig) -> CounterFilter {
        assert!(cfg.sets.is_power_of_two(), "sets must be a power of two");
        assert!(cfg.threshold > 0, "threshold must be positive");
        CounterFilter {
            cfg,
            entries: vec![
                Entry {
                    key: u64::MAX,
                    count: 0,
                    stamp: 0
                };
                (cfg.sets * cfg.ways) as usize
            ],
            tick: 0,
            evictions: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &FilterConfig {
        &self.cfg
    }

    /// Record one occurrence of `key`; returns the updated count.
    /// A brand-new or evicted-and-refetched key starts at 1.
    pub fn bump(&mut self, key: u64) -> u32 {
        self.tick += 1;
        let set = (key % u64::from(self.cfg.sets)) as usize;
        let base = set * self.cfg.ways as usize;
        let ways = &mut self.entries[base..base + self.cfg.ways as usize];
        if let Some(e) = ways.iter_mut().find(|e| e.key == key) {
            e.count = e.count.saturating_add(1);
            e.stamp = self.tick;
            if e.count == self.cfg.threshold {
                // Exactly crossing the threshold: this occurrence promotes
                // the TID (to construction or, for the blazing filter, to
                // the optimizer).
                tev::instant(
                    "filter.promote",
                    "trace",
                    tev::track::TRACE,
                    tev::arg1("threshold", f64::from(self.cfg.threshold)),
                );
            }
            return e.count;
        }
        // Victim: prefer an invalid way, else the LRU.
        let victim = ways
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| {
                if e.key == u64::MAX {
                    (0, 0)
                } else {
                    (1, e.stamp)
                }
            })
            .map(|(i, _)| i)
            .expect("nonzero associativity");
        if ways[victim].key != u64::MAX {
            self.evictions += 1;
        }
        ways[victim] = Entry {
            key,
            count: 1,
            stamp: self.tick,
        };
        1
    }

    /// Has `key` reached the threshold (without modifying state)?
    pub fn is_qualified(&self, key: u64) -> bool {
        self.count(key) >= self.cfg.threshold
    }

    /// Current count for `key` (0 if not resident).
    pub fn count(&self, key: u64) -> u32 {
        let set = (key % u64::from(self.cfg.sets)) as usize;
        let base = set * self.cfg.ways as usize;
        self.entries[base..base + self.cfg.ways as usize]
            .iter()
            .find(|e| e.key == key)
            .map(|e| e.count)
            .unwrap_or(0)
    }

    /// A different key guaranteed to index the same set as `key` — models a
    /// TID hash collision for fault injection. Since `sets` is a power of
    /// two, adding any multiple of it preserves the set index even across
    /// wrap-around. `salt` varies which colliding key is produced.
    pub fn alias_key(&self, key: u64, salt: u64) -> u64 {
        key.wrapping_add(u64::from(self.cfg.sets) * (1 + salt % 7))
    }

    /// Reset the counter for `key` (e.g. after acting on qualification).
    pub fn reset(&mut self, key: u64) {
        let set = (key % u64::from(self.cfg.sets)) as usize;
        let base = set * self.cfg.ways as usize;
        if let Some(e) = self.entries[base..base + self.cfg.ways as usize]
            .iter_mut()
            .find(|e| e.key == key)
        {
            e.count = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filter(threshold: u32) -> CounterFilter {
        CounterFilter::new(FilterConfig {
            sets: 16,
            ways: 2,
            threshold,
        })
    }

    #[test]
    fn qualifies_exactly_at_threshold() {
        let mut f = filter(3);
        assert_eq!(f.bump(42), 1);
        assert!(!f.is_qualified(42));
        assert_eq!(f.bump(42), 2);
        assert!(!f.is_qualified(42));
        assert_eq!(f.bump(42), 3);
        assert!(f.is_qualified(42));
    }

    #[test]
    fn cold_keys_evict_lru_but_hot_key_survives_by_recency() {
        let mut f = CounterFilter::new(FilterConfig {
            sets: 1,
            ways: 2,
            threshold: 10,
        });
        for _ in 0..5 {
            f.bump(1); // hot key, most recent
        }
        f.bump(2);
        f.bump(1); // re-touch 1 so 2 is LRU
        f.bump(3); // evicts 2
        assert_eq!(f.count(1), 6);
        assert_eq!(f.count(2), 0, "cold key evicted");
        assert_eq!(f.count(3), 1);
        assert!(f.evictions > 0);
    }

    #[test]
    fn eviction_restarts_counting() {
        let mut f = CounterFilter::new(FilterConfig {
            sets: 1,
            ways: 1,
            threshold: 5,
        });
        for _ in 0..4 {
            f.bump(7);
        }
        f.bump(8); // evicts 7
        assert_eq!(f.bump(7), 1, "evicted key restarts at 1");
    }

    #[test]
    fn reset_clears_count() {
        let mut f = filter(2);
        f.bump(5);
        f.bump(5);
        assert!(f.is_qualified(5));
        f.reset(5);
        assert!(!f.is_qualified(5));
        assert_eq!(f.count(5), 0);
    }

    #[test]
    fn distinct_keys_are_independent() {
        let mut f = filter(2);
        f.bump(100);
        f.bump(116); // different set likely; even same set, independent count
        assert_eq!(f.count(100), 1);
        assert_eq!(f.count(116), 1);
    }

    #[test]
    fn alias_key_collides_in_set_but_differs() {
        let f = filter(3);
        for key in [0u64, 5, 1 << 40, u64::MAX - 3] {
            for salt in 0..10 {
                let alias = f.alias_key(key, salt);
                assert_ne!(alias, key);
                assert_eq!(alias % 16, key % 16, "same set");
            }
        }
    }

    #[test]
    fn paper_thresholds() {
        assert!(FilterConfig::blazing().threshold > FilterConfig::hot().threshold);
    }
}

//! # parrot-trace
//!
//! The PARROT trace subsystem (§2.2–2.3): trace identifiers ([`Tid`]),
//! deterministic post-retirement trace selection ([`TraceSelector`]),
//! gradual hot/blazing filtering ([`CounterFilter`]), executable frame
//! construction ([`construct_frame`]), the decoded/optimized trace cache
//! ([`TraceCache`]) and the next-trace predictor ([`TracePredictor`]).
//!
//! The promotion pipeline is exactly the paper's:
//!
//! ```text
//! committed stream ──► TraceSelector ──► TID
//!        TID ──► hot filter (×12) ──► construct ──► TraceCache
//!        execution (×48, blazing filter) ──► optimizer ──► write-back
//! ```
//!
//! ```
//! use parrot_trace::{SelectionConfig, TraceSelector};
//!
//! let selector = TraceSelector::new(SelectionConfig::default());
//! assert_eq!(selector.stats().candidates, 0);
//! ```

#![warn(missing_docs)]

mod cache;
mod constructor;
mod filter;
mod predictor;
mod selection;
mod tid;

pub use cache::{OptLevel, OptVerdict, TraceCache, TraceCacheConfig, TraceCacheStats, TraceFrame};
pub use constructor::construct_frame;
pub use filter::{CounterFilter, FilterConfig};
pub use predictor::{TracePredConfig, TracePredStats, TracePredictor};
pub use selection::{
    CandInst, SelectionConfig, SelectionStrategy, SelectorStats, TraceCandidate, TraceSelector,
};
pub use tid::Tid;

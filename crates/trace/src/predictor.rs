//! The next-trace (TID) predictor (§2.3, §4.2): a path-history-indexed
//! table predicting which trace executes next. A confident prediction that
//! hits in the trace cache steers the fetch selector to the hot pipeline.

use crate::tid::Tid;

/// Trace-predictor configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TracePredConfig {
    /// Table entries (the paper's PARROT models use 2K).
    pub entries: u32,
    /// Confidence threshold (2-bit counters; predict at ≥ this value).
    pub confidence: u8,
}

impl TracePredConfig {
    /// The 2K-entry configuration of the PARROT models.
    pub fn parrot_2k() -> TracePredConfig {
        TracePredConfig {
            entries: 2048,
            confidence: 2,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct PredEntry {
    tag: u64,
    pred: Tid,
    conf: u8,
}

/// Prediction statistics (feeds Fig 4.7's trace-misprediction rate).
#[derive(Clone, Copy, Debug, Default)]
pub struct TracePredStats {
    /// Boundaries observed (training events).
    pub observed: u64,
    /// Confident predictions issued.
    pub predictions: u64,
    /// Confident predictions that matched the executed path.
    pub correct: u64,
}

impl TracePredStats {
    /// Misprediction rate over issued predictions.
    pub fn mispredict_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            1.0 - self.correct as f64 / self.predictions as f64
        }
    }
}

/// Path-history next-TID predictor with hysteresis.
#[derive(Clone, Debug)]
pub struct TracePredictor {
    cfg: TracePredConfig,
    table: Vec<Option<PredEntry>>,
    /// Keys of the two most recently executed traces (path depth 2).
    last: [u64; 2],
    /// Consecutive occurrences of `last[1]` at the history tail. Folding
    /// the repeat count into the history lets the predictor learn *loop
    /// exits*: "after k repeats of trace T comes trace X" — the advanced
    /// trace-prediction capability the paper's §2.2 alludes to.
    run: u32,
    stats: TracePredStats,
}

impl TracePredictor {
    /// An empty predictor.
    ///
    /// # Panics
    /// Panics unless `entries` is a power of two.
    pub fn new(cfg: TracePredConfig) -> TracePredictor {
        assert!(
            cfg.entries.is_power_of_two(),
            "entries must be a power of two"
        );
        TracePredictor {
            cfg,
            table: vec![None; cfg.entries as usize],
            last: [0; 2],
            run: 0,
            stats: TracePredStats::default(),
        }
    }

    /// Statistics so far. Correctness is scored by the caller via
    /// [`TracePredictor::score`].
    pub fn stats(&self) -> &TracePredStats {
        &self.stats
    }

    /// Bounded path history: the last two trace keys plus the (saturated)
    /// repeat count of the most recent one, mixed.
    fn hist(&self) -> u64 {
        Self::hist_of(self.last, self.run)
    }

    fn hist_of(last: [u64; 2], run: u32) -> u64 {
        last[0].rotate_left(13) ^ last[1] ^ (u64::from(run.min(63)) << 56)
    }

    fn index(&self) -> usize {
        (mix(self.hist()) % u64::from(self.cfg.entries)) as usize
    }

    /// Predict the next trace from the current path history; `None` when
    /// there is no confident entry (the fetch selector then goes cold).
    pub fn predict(&mut self) -> Option<Tid> {
        self.lookup(self.hist())
    }

    /// Predict with a speculative extra history element: the key of a trace
    /// that has executed but not yet been observed (the selector may still
    /// be joining it). Keeps fetch-time prediction aligned with the
    /// delayed, post-retirement training stream.
    pub fn predict_with(&mut self, extra: Option<u64>) -> Option<Tid> {
        match extra {
            None => self.predict(),
            Some(k) => {
                let run = if k == self.last[1] { self.run + 1 } else { 1 };
                let hist = Self::hist_of([self.last[1], k], run);
                self.lookup(hist)
            }
        }
    }

    /// Penalize the entry that produced a trace misprediction (an aborted
    /// trace): lowers its confidence so repeated aborts stop being
    /// predicted. `extra` must match what was passed to
    /// [`TracePredictor::predict_with`].
    pub fn punish(&mut self, extra: Option<u64>) {
        let hist = match extra {
            None => self.hist(),
            Some(k) => {
                let run = if k == self.last[1] { self.run + 1 } else { 1 };
                Self::hist_of([self.last[1], k], run)
            }
        };
        let idx = (mix(hist) % u64::from(self.cfg.entries)) as usize;
        if let Some(e) = &mut self.table[idx] {
            if e.tag == hist {
                if e.conf > 0 {
                    e.conf -= 1;
                } else {
                    self.table[idx] = None;
                }
            }
        }
    }

    fn lookup(&mut self, hist: u64) -> Option<Tid> {
        let idx = (mix(hist) % u64::from(self.cfg.entries)) as usize;
        let e = self.table[idx]?;
        if e.tag == hist && e.conf >= self.cfg.confidence {
            self.stats.predictions += 1;
            Some(e.pred)
        } else {
            None
        }
    }

    /// Record whether the last confident prediction matched the executed
    /// path (statistics only).
    pub fn score(&mut self, correct: bool) {
        if correct {
            self.stats.correct += 1;
        }
    }

    /// Train on the actually executed next trace and advance the path
    /// history. Call at every committed trace boundary, hot or cold.
    pub fn observe(&mut self, actual: &Tid) {
        self.stats.observed += 1;
        let hist = self.hist();
        let idx = self.index();
        match &mut self.table[idx] {
            Some(e) if e.tag == hist => {
                if e.pred == *actual {
                    e.conf = (e.conf + 1).min(3);
                } else if e.conf > 0 {
                    e.conf -= 1;
                } else {
                    e.pred = *actual;
                    e.conf = 1;
                }
            }
            slot => {
                *slot = Some(PredEntry {
                    tag: hist,
                    pred: *actual,
                    conf: 1,
                });
            }
        }
        let key = actual.key();
        if key == self.last[1] {
            self.run += 1;
        } else {
            self.run = 1;
        }
        self.last = [self.last[1], key];
    }
}

fn mix(mut x: u64) -> u64 {
    x ^= x >> 31;
    x = x.wrapping_mul(0x7fb5_d329_728e_a185);
    x ^= x >> 27;
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(pc: u64) -> Tid {
        Tid::new(pc)
    }

    #[test]
    fn learns_a_repeating_sequence() {
        let mut p = TracePredictor::new(TracePredConfig::parrot_2k());
        let seq = [tid(0x100), tid(0x200), tid(0x300)];
        // Warm up.
        for _ in 0..8 {
            for t in &seq {
                p.observe(t);
            }
        }
        // Now every prediction should be confident and correct.
        let mut correct = 0;
        for _ in 0..4 {
            for t in &seq {
                if let Some(pred) = p.predict() {
                    if pred == *t {
                        correct += 1;
                    }
                }
                p.observe(t);
            }
        }
        assert_eq!(
            correct, 12,
            "repeating trace sequence must be fully predicted"
        );
    }

    #[test]
    fn no_prediction_without_confidence() {
        let mut p = TracePredictor::new(TracePredConfig::parrot_2k());
        assert_eq!(p.predict(), None);
        p.observe(&tid(0x100));
        // One observation: conf 1 < threshold 2 at the (new) history point.
        assert_eq!(p.predict(), None);
    }

    #[test]
    fn alternating_paths_reduce_confidence_not_thrash() {
        let mut p = TracePredictor::new(TracePredConfig::parrot_2k());
        // From the same history, alternate successors: predictor should
        // mostly abstain rather than predict wrongly forever.
        let a = tid(0xa);
        let b = tid(0xb);
        let mut wrong = 0;
        for i in 0..200 {
            if let Some(pred) = p.predict() {
                let actual = if i % 2 == 0 { a } else { b };
                if pred != actual {
                    wrong += 1;
                }
            }
            // Reset history to the same point each time by constructing the
            // alternation through observation.
            p.observe(if i % 2 == 0 { &a } else { &b });
        }
        let s = p.stats();
        assert!(
            wrong as f64 <= 0.6 * s.predictions.max(1) as f64 + 5.0,
            "hysteresis should limit wrong confident predictions: wrong={wrong}, preds={}",
            s.predictions
        );
    }

    #[test]
    fn stats_track_predictions() {
        let mut p = TracePredictor::new(TracePredConfig::parrot_2k());
        let t = tid(1);
        for _ in 0..10 {
            p.observe(&t);
        }
        // After history settles this self-loop is predictable.
        let before = p.stats().predictions;
        if p.predict().is_some() {
            p.score(true);
        }
        assert!(p.stats().predictions >= before);
        assert!(p.stats().observed == 10);
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_rejected() {
        let _ = TracePredictor::new(TracePredConfig {
            entries: 1000,
            confidence: 2,
        });
    }
}

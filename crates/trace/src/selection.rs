//! Deterministic trace selection (§2.2): folds the committed instruction
//! stream into trace candidates according to the paper's rules —
//! 64-uop frames, termination on indirect jumps and backward taken
//! branches, returns terminating only when they exit the outermost
//! procedure context entered within the trace (a context counter), and
//! joining of consecutive identical traces (loop unrolling).

use crate::tid::Tid;
use parrot_isa::{InstId, InstKind};
use parrot_workloads::DynInst;
use std::collections::HashMap;

/// How trace boundaries are chosen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SelectionStrategy {
    /// PARROT's deterministic, mostly *static* criteria (§2.2): terminate
    /// on indirect jumps, backward taken branches and outermost returns;
    /// join identical consecutive traces (loop unrolling).
    ParrotStatic,
    /// A rePlay-style *dynamic* criterion (the paper's closest related
    /// system): frames end where branch bias drops — a per-branch
    /// confidence estimator cuts the frame at the first weakly biased
    /// branch. No loop-boundary cutting, no joining, no return-context
    /// rule. Implemented as the comparison baseline the paper discusses.
    ReplayDynamic {
        /// Saturating-counter confidence required to extend a frame past a
        /// conditional branch (0–15; rePlay used high-confidence promotion).
        confidence: u8,
    },
}

/// Trace-selection parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SelectionConfig {
    /// Frame capacity in uops (the paper uses 64).
    pub max_uops: u32,
    /// Join consecutive identical traces (explicit loop unrolling).
    pub join_identical: bool,
    /// Maximum identical units joined into one trace. Bounding the unroll
    /// factor bounds a joined trace's exposure to loop exits (every exit
    /// aborts an in-flight unrolled trace) while still enabling
    /// SIMDification across 2–4 iterations.
    pub max_joins: u32,
    /// Boundary-selection strategy.
    pub strategy: SelectionStrategy,
}

impl Default for SelectionConfig {
    fn default() -> SelectionConfig {
        SelectionConfig {
            max_uops: 64,
            join_identical: true,
            max_joins: 4,
            strategy: SelectionStrategy::ParrotStatic,
        }
    }
}

impl SelectionConfig {
    /// The rePlay-style baseline configuration.
    pub fn replay_style() -> SelectionConfig {
        SelectionConfig {
            max_uops: 64,
            join_identical: false,
            max_joins: 1,
            strategy: SelectionStrategy::ReplayDynamic { confidence: 11 },
        }
    }
}

/// One committed instruction recorded into a candidate (everything trace
/// construction later needs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CandInst {
    /// Static instruction id.
    pub inst: InstId,
    /// Committed pc.
    pub pc: u64,
    /// Committed direction (conditional branches; false otherwise).
    pub taken: bool,
    /// Committed effective address (memory instructions; 0 otherwise).
    pub eff_addr: u64,
    /// Decoded uop count of the instruction.
    pub uop_count: u8,
}

/// A completed trace candidate: TID plus the recorded instruction sequence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceCandidate {
    /// The (possibly joined) trace identifier.
    pub tid: Tid,
    /// The TID of one un-joined unit (used for join matching).
    pub unit_tid: Tid,
    /// Recorded instructions in commit order.
    pub insts: Vec<CandInst>,
    /// Total decoded uops.
    pub num_uops: u32,
    /// Oracle sequence number of the first instruction.
    pub start_seq: u64,
    /// Number of identical units joined (1 = no joining; >1 = unrolled).
    pub joins: u32,
}

/// Why a trace was terminated (statistics).
#[derive(Clone, Copy, Debug, Default)]
pub struct SelectorStats {
    /// Candidates emitted.
    pub candidates: u64,
    /// Extra units merged into joined candidates.
    pub joined_units: u64,
    /// Frames cut at the uop-capacity limit.
    pub term_capacity: u64,
    /// Frames cut at a backward taken branch.
    pub term_backward: u64,
    /// Frames cut at an indirect jump.
    pub term_indirect: u64,
    /// Frames cut at a return.
    pub term_return: u64,
    /// rePlay mode: frames cut at weakly biased branches.
    pub term_lowbias: u64,
}

#[derive(Clone, Debug)]
struct Build {
    tid: Tid,
    insts: Vec<CandInst>,
    num_uops: u32,
    start_seq: u64,
    ctx: u32,
}

/// The background TID/trace-selection unit. Feed it every committed
/// instruction; it emits [`TraceCandidate`]s at trace boundaries.
#[derive(Clone, Debug)]
pub struct TraceSelector {
    cfg: SelectionConfig,
    cur: Option<Build>,
    pending: Option<TraceCandidate>,
    /// Consecutive-repeat tracking: joining is only worthwhile when a unit
    /// historically repeats many times (long loops); every loop exit aborts
    /// an in-flight unrolled trace, so the unroll factor adapts to the
    /// observed repeat count (EWMA per unit TID).
    run_tid: Option<Tid>,
    run_len: u32,
    repeat_ewma: HashMap<u64, f32>,
    /// rePlay-mode branch-bias estimator: per-PC saturating agreement
    /// counter (bumped when the branch repeats its previous direction).
    bias: HashMap<u64, (bool, u8)>,
    stats: SelectorStats,
}

impl TraceSelector {
    /// A selector with the given configuration.
    pub fn new(cfg: SelectionConfig) -> TraceSelector {
        TraceSelector {
            cfg,
            cur: None,
            pending: None,
            run_tid: None,
            run_len: 0,
            repeat_ewma: HashMap::new(),
            bias: HashMap::new(),
            stats: SelectorStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> &SelectorStats {
        &self.stats
    }

    /// Is the selector at a trace boundary (the next committed instruction
    /// starts a new trace)?
    pub fn at_boundary(&self) -> bool {
        self.cur.is_none()
    }

    /// Would an instruction of `uop_count` uops start a new trace? True at
    /// plain boundaries and also when the in-progress trace would overflow
    /// (capacity cuts seal *before* the overflowing instruction, so the
    /// fetch selector must see that boundary ahead of time).
    pub fn boundary_before(&self, uop_count: u32) -> bool {
        match &self.cur {
            None => true,
            Some(cur) => cur.num_uops + uop_count > self.cfg.max_uops || cur.tid.num_branches == 64,
        }
    }

    /// The TID of the sealed-but-unemitted candidate currently held for
    /// possible joining, if any (its key feeds speculative trace
    /// prediction).
    pub fn pending_tid(&self) -> Option<Tid> {
        self.pending.as_ref().map(|p| p.tid)
    }

    /// Process one committed instruction. Completed candidates (zero, one,
    /// or — at a capacity boundary — two) are appended to `out`.
    pub fn step(&mut self, d: &DynInst, kind: &InstKind, seq: u64, out: &mut Vec<TraceCandidate>) {
        let uop_count = kind.uop_count() as u32;

        // Capacity: if this instruction doesn't fit, seal the current trace
        // first. (The paper cuts oversized basic blocks — the "extremely
        // large basic blocks" exception.)
        if let Some(cur) = &self.cur {
            if cur.num_uops + uop_count > self.cfg.max_uops || cur.tid.num_branches == 64 {
                self.stats.term_capacity += 1;
                self.seal(out);
            }
        }

        let cur = self.cur.get_or_insert_with(|| Build {
            tid: Tid::new(d.pc),
            insts: Vec::with_capacity(16),
            num_uops: 0,
            start_seq: seq,
            ctx: 0,
        });

        cur.insts.push(CandInst {
            inst: d.inst,
            pc: d.pc,
            taken: d.taken,
            eff_addr: d.eff_addr,
            uop_count: uop_count as u8,
        });
        cur.num_uops += uop_count;
        if matches!(kind, InstKind::CondBranch { .. }) {
            cur.tid.push_dir(d.taken);
        }

        // Termination rules, per strategy.
        let terminate = match self.cfg.strategy {
            SelectionStrategy::ParrotStatic => match kind {
                InstKind::IndirectJump { .. } => {
                    self.stats.term_indirect += 1;
                    true
                }
                InstKind::CondBranch { .. } if d.taken && d.next_pc < d.pc => {
                    self.stats.term_backward += 1;
                    true
                }
                InstKind::Call => {
                    cur.ctx += 1;
                    false
                }
                InstKind::Return => {
                    if cur.ctx == 0 {
                        self.stats.term_return += 1;
                        true
                    } else {
                        cur.ctx -= 1;
                        false
                    }
                }
                _ => false,
            },
            SelectionStrategy::ReplayDynamic { confidence } => match kind {
                InstKind::IndirectJump { .. } => {
                    self.stats.term_indirect += 1;
                    true
                }
                InstKind::CondBranch { .. } => {
                    // Update the per-branch agreement counter and cut the
                    // frame at weakly biased branches.
                    let e = self.bias.entry(d.pc).or_insert((d.taken, 12));
                    if e.0 == d.taken {
                        e.1 = (e.1 + 1).min(15);
                    } else {
                        e.1 = e.1.saturating_sub(3);
                        if e.1 == 0 {
                            *e = (d.taken, 4);
                        }
                    }
                    let weak = e.1 < confidence;
                    if weak {
                        self.stats.term_lowbias += 1;
                    }
                    weak
                }
                _ => false,
            },
        };
        if terminate {
            self.seal(out);
        }
    }

    /// Emit any in-progress and pending candidates (end of simulation).
    pub fn flush(&mut self, out: &mut Vec<TraceCandidate>) {
        self.seal(out);
        if let Some(p) = self.pending.take() {
            self.stats.candidates += 1;
            out.push(p);
        }
    }

    /// Seal the current build into a candidate, merging with the pending
    /// candidate when they are identical consecutive traces.
    fn seal(&mut self, out: &mut Vec<TraceCandidate>) {
        let Some(b) = self.cur.take() else { return };
        if b.insts.is_empty() {
            return;
        }
        let raw = TraceCandidate {
            tid: b.tid,
            unit_tid: b.tid,
            insts: b.insts,
            num_uops: b.num_uops,
            start_seq: b.start_seq,
            joins: 1,
        };
        // Track consecutive repeats of this unit.
        if self.run_tid == Some(raw.tid) {
            self.run_len += 1;
        } else {
            if let Some(t) = self.run_tid.take() {
                let e = self.repeat_ewma.entry(t.key()).or_insert(24.0);
                *e = 0.75 * *e + 0.25 * self.run_len as f32;
            }
            self.run_tid = Some(raw.tid);
            self.run_len = 1;
        }
        if self.cfg.join_identical {
            // Adaptive unroll: short-repeat units are not worth joining.
            let ewma = self
                .repeat_ewma
                .get(&raw.tid.key())
                .copied()
                .unwrap_or(24.0);
            let join_limit = ((ewma / 12.0) as u32).clamp(1, self.cfg.max_joins);
            if let Some(p) = &mut self.pending {
                let same_unit = p.unit_tid == raw.tid;
                let fits = p.num_uops + raw.num_uops <= self.cfg.max_uops && p.joins < join_limit;
                if same_unit && fits && p.tid.try_join(&raw.tid) {
                    p.insts.extend_from_slice(&raw.insts);
                    p.num_uops += raw.num_uops;
                    p.joins += 1;
                    self.stats.joined_units += 1;
                    return;
                }
            }
        }
        if let Some(prev) = self.pending.replace(raw) {
            self.stats.candidates += 1;
            out.push(prev);
        }
        if !self.cfg.join_identical {
            // No joining: emit immediately.
            if let Some(p) = self.pending.take() {
                self.stats.candidates += 1;
                out.push(p);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parrot_isa::Cond;
    use parrot_workloads::{generate_program, AppProfile, DynInst, ExecutionEngine, Suite};

    fn dyninst(pc: u64, taken: bool, next_pc: u64) -> DynInst {
        DynInst {
            inst: 0,
            pc,
            len: 2,
            taken,
            next_pc,
            eff_addr: 0,
            has_mem: false,
        }
    }

    fn run_selector(cfg: SelectionConfig, steps: &[(DynInst, InstKind)]) -> Vec<TraceCandidate> {
        let mut sel = TraceSelector::new(cfg);
        let mut out = Vec::new();
        for (seq, (d, k)) in steps.iter().enumerate() {
            sel.step(d, k, seq as u64, &mut out);
        }
        sel.flush(&mut out);
        out
    }

    fn alu_kind() -> InstKind {
        InstKind::IntAlu {
            op: parrot_isa::AluOp::Add,
            dst: parrot_isa::Reg::int(0),
            src: parrot_isa::Reg::int(1),
            rhs: parrot_isa::Operand::Imm(1),
        }
    }

    #[test]
    fn backward_taken_branch_terminates() {
        let steps = vec![
            (dyninst(100, false, 102), alu_kind()),
            (
                dyninst(102, true, 100),
                InstKind::CondBranch { cond: Cond::Eq },
            ),
        ];
        // Repeat the loop body 3 times: identical iteration traces join.
        let mut all = steps.clone();
        all.extend(steps.clone());
        all.extend(steps);
        let out = run_selector(
            SelectionConfig {
                join_identical: false,
                ..Default::default()
            },
            &all,
        );
        assert_eq!(out.len(), 3, "each iteration is a trace without joining");
        assert_eq!(out[0].tid.num_branches, 1);
        assert!(out[0].tid.dir(0));
    }

    #[test]
    fn identical_consecutive_traces_join() {
        let steps = vec![
            (dyninst(100, false, 102), alu_kind()),
            (
                dyninst(102, true, 100),
                InstKind::CondBranch { cond: Cond::Eq },
            ),
        ];
        let mut all = Vec::new();
        for _ in 0..4 {
            all.extend(steps.clone());
        }
        let out = run_selector(SelectionConfig::default(), &all);
        // With the default repeat estimate (EWMA 24), the adaptive unroll
        // limit is 2: four identical iterations become two joined pairs.
        assert_eq!(out.len(), 2);
        for c in &out {
            assert_eq!(c.joins, 2);
            assert_eq!(c.insts.len(), 4);
            assert_eq!(c.tid.num_branches, 2);
        }
    }

    #[test]
    fn long_loops_unroll_to_the_configured_limit() {
        // Many iterations: once the EWMA learns the long repeat run, joins
        // reach the configured maximum.
        let steps = vec![
            (dyninst(100, false, 102), alu_kind()),
            (
                dyninst(102, true, 100),
                InstKind::CondBranch { cond: Cond::Eq },
            ),
        ];
        let mut all = Vec::new();
        for _ in 0..200 {
            all.extend(steps.clone());
        }
        // Break the run so the EWMA updates, then run the loop again.
        all.push((dyninst(500, true, 700), InstKind::Jump));
        for _ in 0..40 {
            all.extend(steps.clone());
        }
        let out = run_selector(SelectionConfig::default(), &all);
        let max_joins = out.iter().map(|c| c.joins).max().unwrap_or(0);
        assert_eq!(max_joins, SelectionConfig::default().max_joins);
    }

    #[test]
    fn capacity_limits_frame_to_max_uops() {
        // 70 single-uop instructions, no CTIs: must split at 64.
        let steps: Vec<_> = (0..70)
            .map(|i| (dyninst(100 + i * 2, false, 102 + i * 2), alu_kind()))
            .collect();
        let out = run_selector(
            SelectionConfig {
                join_identical: false,
                ..Default::default()
            },
            &steps,
        );
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].num_uops, 64);
        assert_eq!(out[1].num_uops, 6);
    }

    #[test]
    fn indirect_jump_terminates() {
        let steps = vec![
            (dyninst(100, false, 103), alu_kind()),
            (
                dyninst(103, true, 500),
                InstKind::IndirectJump {
                    sel: parrot_isa::Reg::int(3),
                },
            ),
            (dyninst(500, false, 503), alu_kind()),
        ];
        let out = run_selector(
            SelectionConfig {
                join_identical: false,
                ..Default::default()
            },
            &steps,
        );
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].insts.len(), 2);
        assert_eq!(out[1].insts[0].pc, 500);
    }

    #[test]
    fn return_respects_context_counter() {
        // call; body; return (matched: does NOT terminate); then a bare
        // return at outermost context (terminates) — procedure inlining.
        let steps = vec![
            (dyninst(100, true, 200), InstKind::Call),
            (dyninst(200, false, 203), alu_kind()),
            (dyninst(203, true, 105), InstKind::Return),
            (dyninst(105, false, 108), alu_kind()),
            (dyninst(108, true, 50), InstKind::Return),
            (dyninst(50, false, 53), alu_kind()),
        ];
        let out = run_selector(
            SelectionConfig {
                join_identical: false,
                ..Default::default()
            },
            &steps,
        );
        assert_eq!(
            out.len(),
            2,
            "matched call/return must be inlined into one trace"
        );
        assert_eq!(out[0].insts.len(), 5);
    }

    #[test]
    fn forward_branches_and_jumps_extend_traces() {
        let steps = vec![
            (
                dyninst(100, true, 200),
                InstKind::CondBranch { cond: Cond::Ne },
            ), // forward taken
            (dyninst(200, false, 202), alu_kind()),
            (dyninst(202, true, 300), InstKind::Jump),
            (dyninst(300, false, 303), alu_kind()),
        ];
        let out = run_selector(
            SelectionConfig {
                join_identical: false,
                ..Default::default()
            },
            &steps,
        );
        assert_eq!(out.len(), 1, "forward CTIs must not terminate");
        assert_eq!(out[0].tid.num_branches, 1);
    }

    #[test]
    fn single_entry_invariant_on_real_stream() {
        // On a real application stream, every candidate starts where the
        // previous dynamic instruction ended and stays within uop capacity.
        let prog = generate_program(&AppProfile::suite_base(Suite::SpecInt));
        let mut sel = TraceSelector::new(SelectionConfig::default());
        let mut out = Vec::new();
        for (seq, d) in ExecutionEngine::new(&prog).take(30_000).enumerate() {
            let kind = prog.inst(d.inst).kind;
            sel.step(&d, &kind, seq as u64, &mut out);
        }
        sel.flush(&mut out);
        assert!(out.len() > 100);
        for c in &out {
            assert!(c.num_uops <= 64, "capacity violated: {}", c.num_uops);
            assert!(!c.insts.is_empty());
            assert_eq!(c.tid.start_pc, c.insts[0].pc);
            let branches = c
                .insts
                .iter()
                .filter(|i| matches!(prog.inst(i.inst).kind, InstKind::CondBranch { .. }))
                .count();
            assert_eq!(branches, c.tid.num_branches as usize);
            let uops: u32 = c.insts.iter().map(|i| u32::from(i.uop_count)).sum();
            assert_eq!(uops, c.num_uops);
        }
        let joined = out.iter().filter(|c| c.joins > 1).count();
        assert!(joined > 0, "loops should produce joined (unrolled) traces");
    }
}

#[cfg(test)]
mod replay_tests {
    use super::*;
    use parrot_isa::Cond;
    use parrot_workloads::{generate_program, AppProfile, ExecutionEngine, Suite};

    fn dyninst(pc: u64, taken: bool, next_pc: u64) -> parrot_workloads::DynInst {
        parrot_workloads::DynInst {
            inst: 0,
            pc,
            len: 2,
            taken,
            next_pc,
            eff_addr: 0,
            has_mem: false,
        }
    }

    #[test]
    fn replay_cuts_at_weakly_biased_branches() {
        let mut sel = TraceSelector::new(SelectionConfig::replay_style());
        let mut out = Vec::new();
        let alu = InstKind::IntAlu {
            op: parrot_isa::AluOp::Add,
            dst: parrot_isa::Reg::int(0),
            src: parrot_isa::Reg::int(1),
            rhs: parrot_isa::Operand::Imm(1),
        };
        let br = InstKind::CondBranch { cond: Cond::Eq };
        // An alternating (unbiased) branch: agreement counter collapses, so
        // frames must terminate at it.
        let mut seq = 0u64;
        for i in 0..40 {
            sel.step(&dyninst(100, false, 102), &alu, seq, &mut out);
            seq += 1;
            sel.step(&dyninst(102, i % 2 == 0, 104), &br, seq, &mut out);
            seq += 1;
        }
        sel.flush(&mut out);
        assert!(
            sel.stats().term_lowbias > 10,
            "alternating branch must cut frames"
        );
        // A strongly biased branch extends frames instead.
        let mut sel2 = TraceSelector::new(SelectionConfig::replay_style());
        let mut out2 = Vec::new();
        let mut seq = 0u64;
        for _ in 0..40 {
            sel2.step(&dyninst(100, false, 102), &alu, seq, &mut out2);
            seq += 1;
            sel2.step(&dyninst(102, true, 104), &br, seq, &mut out2);
            seq += 1;
        }
        sel2.flush(&mut out2);
        assert!(
            sel2.stats().term_lowbias <= 2,
            "a monotone branch must stop cutting frames once confidence builds"
        );
    }

    #[test]
    fn replay_mode_still_partitions_real_streams() {
        let prog = generate_program(&AppProfile::suite_base(Suite::SpecInt));
        let mut sel = TraceSelector::new(SelectionConfig::replay_style());
        let mut out = Vec::new();
        let n = 20_000usize;
        for (seq, d) in ExecutionEngine::new(&prog).take(n).enumerate() {
            let kind = prog.inst(d.inst).kind;
            sel.step(&d, &kind, seq as u64, &mut out);
        }
        sel.flush(&mut out);
        let total: usize = out.iter().map(|c| c.insts.len()).sum();
        assert_eq!(total, n, "every instruction in exactly one frame");
        assert!(out.iter().all(|c| c.num_uops <= 64));
        assert!(out.iter().all(|c| c.joins == 1), "rePlay mode never joins");
    }
}

use std::fmt;

/// A trace identifier (§2.2): the trace's start address plus the directions
/// of its embedded conditional branches, compacted into a single word.
///
/// Two dynamic code sequences with equal TIDs followed identical paths, so
/// the TID is the key for the filters, the trace cache and the trace
/// predictor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Tid {
    /// Address of the first instruction.
    pub start_pc: u64,
    /// Branch directions, bit `i` = direction of the i-th embedded
    /// conditional branch.
    pub dirs: u64,
    /// Number of embedded conditional branches (≤ 64).
    pub num_branches: u8,
}

impl Tid {
    /// TID of a trace starting at `start_pc` with no branches recorded yet.
    pub fn new(start_pc: u64) -> Tid {
        Tid {
            start_pc,
            dirs: 0,
            num_branches: 0,
        }
    }

    /// Append one conditional-branch direction.
    ///
    /// # Panics
    /// Panics if 64 directions were already recorded.
    pub fn push_dir(&mut self, taken: bool) {
        assert!(self.num_branches < 64, "TID direction overflow");
        if taken {
            self.dirs |= 1 << self.num_branches;
        }
        self.num_branches += 1;
    }

    /// Direction of the i-th embedded branch.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn dir(&self, i: u8) -> bool {
        assert!(i < self.num_branches, "branch index out of range");
        (self.dirs >> i) & 1 == 1
    }

    /// Concatenate another TID's directions after this one's (trace
    /// joining / loop unrolling). Returns `false` (unchanged) on overflow.
    #[must_use]
    pub fn try_join(&mut self, other: &Tid) -> bool {
        if u16::from(self.num_branches) + u16::from(other.num_branches) > 64 {
            return false;
        }
        self.dirs |= other.dirs << self.num_branches;
        self.num_branches += other.num_branches;
        true
    }

    /// A well-mixed 64-bit key for set-indexing in filters and caches.
    pub fn key(&self) -> u64 {
        let mut x = self
            .start_pc
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(self.dirs.wrapping_mul(0xc2b2_ae3d_27d4_eb4f))
            .wrapping_add(u64::from(self.num_branches));
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        x
    }
}

impl fmt::Display for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}+", self.start_pc)?;
        for i in 0..self.num_branches {
            f.write_str(if self.dir(i) { "T" } else { "N" })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirs_round_trip() {
        let mut t = Tid::new(0x1000);
        for d in [true, false, true, true] {
            t.push_dir(d);
        }
        assert_eq!(t.num_branches, 4);
        assert!(t.dir(0) && !t.dir(1) && t.dir(2) && t.dir(3));
        assert_eq!(t.to_string(), "0x1000+TNTT");
    }

    #[test]
    fn join_concatenates() {
        let mut a = Tid::new(0x1000);
        a.push_dir(true);
        a.push_dir(false);
        let mut b = Tid::new(0x1000);
        b.push_dir(true);
        assert!(a.try_join(&b));
        assert_eq!(a.num_branches, 3);
        assert!(a.dir(0) && !a.dir(1) && a.dir(2));
    }

    #[test]
    fn join_overflow_is_rejected_and_lossless() {
        let mut a = Tid::new(0);
        for _ in 0..60 {
            a.push_dir(true);
        }
        let mut b = Tid::new(0);
        for _ in 0..10 {
            b.push_dir(false);
        }
        let before = a;
        assert!(!a.try_join(&b));
        assert_eq!(a, before);
    }

    #[test]
    fn distinct_paths_have_distinct_keys() {
        let mut a = Tid::new(0x4000);
        a.push_dir(true);
        let mut b = Tid::new(0x4000);
        b.push_dir(false);
        assert_ne!(a.key(), b.key());
        assert_ne!(Tid::new(0x4000).key(), Tid::new(0x4008).key());
    }

    #[test]
    fn equal_tids_have_equal_keys() {
        let mut a = Tid::new(0x4000);
        a.push_dir(true);
        let mut b = Tid::new(0x4000);
        b.push_dir(true);
        assert_eq!(a, b);
        assert_eq!(a.key(), b.key());
    }
}

//! Property tests for the trace-selection invariants of §2.2: frame
//! capacity, TID/branch-direction consistency, join bounds, and complete
//! stream coverage — over arbitrary generated instruction streams.

use parrot_isa::{AluOp, Cond, InstKind, Operand, Reg};
use parrot_trace::{SelectionConfig, TraceSelector};
use parrot_workloads::DynInst;
use proptest::prelude::*;

/// A compact instruction-stream generator: each element picks an
/// instruction shape and (for CTIs) a direction/offset.
#[derive(Clone, Debug)]
enum Step {
    Alu,
    Mem { store: bool },
    CondBr { taken: bool, backward: bool },
    Jump,
    IndJump,
    Call,
    Return,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        4 => Just(Step::Alu),
        2 => any::<bool>().prop_map(|store| Step::Mem { store }),
        3 => (any::<bool>(), any::<bool>()).prop_map(|(taken, backward)| Step::CondBr { taken, backward }),
        1 => Just(Step::Jump),
        1 => Just(Step::IndJump),
        1 => Just(Step::Call),
        1 => Just(Step::Return),
    ]
}

/// Materialize a consistent dynamic stream: PCs chain, `taken` matches the
/// control flow, backward branches go to lower addresses.
fn materialize(steps: &[Step]) -> Vec<(DynInst, InstKind)> {
    let mut out = Vec::with_capacity(steps.len());
    let mut pc = 0x40_0000u64;
    for s in steps {
        let (kind, len, taken, target): (InstKind, u64, bool, Option<u64>) = match s {
            Step::Alu => (
                InstKind::IntAlu {
                    op: AluOp::Add,
                    dst: Reg::int(0),
                    src: Reg::int(1),
                    rhs: Operand::Imm(1),
                },
                3,
                false,
                None,
            ),
            Step::Mem { store } => {
                let mem = parrot_isa::MemRef { base: Reg::int(2), offset: 0, stream: 0 };
                if *store {
                    (InstKind::Store { src: Reg::int(1), mem }, 3, false, None)
                } else {
                    (InstKind::Load { dst: Reg::int(1), mem }, 3, false, None)
                }
            }
            Step::CondBr { taken, backward } => {
                let t = if *backward { pc.saturating_sub(64).max(0x40_0000) } else { pc + 64 };
                (InstKind::CondBranch { cond: Cond::Eq }, 2, *taken, taken.then_some(t))
            }
            Step::Jump => (InstKind::Jump, 2, true, Some(pc + 32)),
            Step::IndJump => (InstKind::IndirectJump { sel: Reg::int(3) }, 3, true, Some(pc + 48)),
            Step::Call => (InstKind::Call, 5, true, Some(pc + 512)),
            Step::Return => (InstKind::Return, 1, true, Some(pc + 16)),
        };
        let next_pc = target.unwrap_or(pc + len);
        let has_mem = kind.mem_ref().is_some() || matches!(kind, InstKind::Call | InstKind::Return);
        out.push((
            DynInst {
                inst: 0,
                pc,
                len: len as u8,
                taken,
                next_pc,
                eff_addr: if has_mem { 0x1000 } else { 0 },
                has_mem,
            },
            kind,
        ));
        pc = next_pc;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn selection_invariants_hold(steps in prop::collection::vec(step_strategy(), 1..400)) {
        let stream = materialize(&steps);
        let cfg = SelectionConfig::default();
        let mut sel = TraceSelector::new(cfg);
        let mut cands = Vec::new();
        for (seq, (d, kind)) in stream.iter().enumerate() {
            sel.step(d, kind, seq as u64, &mut cands);
        }
        sel.flush(&mut cands);

        // Every instruction lands in exactly one candidate, in order.
        let total: usize = cands.iter().map(|c| c.insts.len()).sum();
        prop_assert_eq!(total, stream.len(), "no instruction lost or duplicated");
        let mut seq_expect = 0u64;
        for c in &cands {
            prop_assert!(c.num_uops <= cfg.max_uops, "capacity respected");
            prop_assert!(c.joins <= cfg.max_joins, "join bound respected");
            prop_assert_eq!(c.tid.start_pc, c.insts[0].pc, "TID starts at first pc");
            prop_assert_eq!(c.start_seq, seq_expect, "candidates partition the stream");
            seq_expect += c.insts.len() as u64;
            // Branch-direction bits mirror the embedded conditional branches.
            let mut bi = 0u8;
            let dirs: Vec<bool> = c
                .insts
                .iter()
                .zip(c.start_seq..)
                .filter(|(_, seq)| matches!(stream[*seq as usize].1, InstKind::CondBranch { .. }))
                .map(|(ci, _)| ci.taken)
                .collect();
            prop_assert_eq!(dirs.len(), c.tid.num_branches as usize);
            for d in dirs {
                prop_assert_eq!(c.tid.dir(bi), d);
                bi += 1;
            }
            // Uop accounting is exact.
            let uops: u32 = c
                .insts
                .iter()
                .zip(c.start_seq..)
                .map(|(_, seq)| stream[seq as usize].1.uop_count() as u32)
                .sum();
            prop_assert_eq!(uops, c.num_uops);
        }
    }

    #[test]
    fn termination_rules_hold(steps in prop::collection::vec(step_strategy(), 1..300)) {
        let stream = materialize(&steps);
        let mut sel = TraceSelector::new(SelectionConfig::default());
        let mut cands = Vec::new();
        for (seq, (d, kind)) in stream.iter().enumerate() {
            sel.step(d, kind, seq as u64, &mut cands);
        }
        sel.flush(&mut cands);
        for c in &cands {
            // No instruction in the *interior* of a trace may be an indirect
            // jump or a backward-taken conditional branch (they terminate a
            // unit). Joined candidates legitimately contain backward taken
            // branches at unit boundaries (loop unrolling), so only unjoined
            // candidates are checked for the backward rule.
            for (k, (ci, seq)) in c.insts.iter().zip(c.start_seq..).enumerate() {
                if k + 1 == c.insts.len() {
                    continue;
                }
                let kind = &stream[seq as usize].1;
                prop_assert!(
                    !matches!(kind, InstKind::IndirectJump { .. }),
                    "indirect jump inside a trace"
                );
                if c.joins == 1 && matches!(kind, InstKind::CondBranch { .. }) && ci.taken {
                    prop_assert!(
                        stream[seq as usize].0.next_pc >= ci.pc,
                        "backward taken branch inside an unjoined trace"
                    );
                }
            }
        }
    }
}

//! Randomized-property tests (seeded in-tree PRNG; formerly proptest) for
//! the trace-selection invariants of §2.2: frame capacity, TID/branch-
//! direction consistency, join bounds, and complete stream coverage — over
//! arbitrary generated instruction streams.

use parrot_isa::{AluOp, Cond, InstKind, Operand, Reg};
use parrot_trace::{SelectionConfig, TraceSelector};
use parrot_workloads::rng::Xorshift64Star;
use parrot_workloads::DynInst;

/// A compact instruction-stream generator: each element picks an
/// instruction shape and (for CTIs) a direction/offset.
#[derive(Clone, Debug)]
enum Step {
    Alu,
    Mem { store: bool },
    CondBr { taken: bool, backward: bool },
    Jump,
    IndJump,
    Call,
    Return,
}

fn arb_step(r: &mut Xorshift64Star) -> Step {
    // Weighted 4:2:3:1:1:1:1 like the original proptest strategy.
    match r.u32_in(0, 13) {
        0..=3 => Step::Alu,
        4..=5 => Step::Mem {
            store: r.chance(0.5),
        },
        6..=8 => Step::CondBr {
            taken: r.chance(0.5),
            backward: r.chance(0.5),
        },
        9 => Step::Jump,
        10 => Step::IndJump,
        11 => Step::Call,
        _ => Step::Return,
    }
}

/// Materialize a consistent dynamic stream: PCs chain, `taken` matches the
/// control flow, backward branches go to lower addresses.
fn materialize(steps: &[Step]) -> Vec<(DynInst, InstKind)> {
    let mut out = Vec::with_capacity(steps.len());
    let mut pc = 0x40_0000u64;
    for s in steps {
        let (kind, len, taken, target): (InstKind, u64, bool, Option<u64>) = match s {
            Step::Alu => (
                InstKind::IntAlu {
                    op: AluOp::Add,
                    dst: Reg::int(0),
                    src: Reg::int(1),
                    rhs: Operand::Imm(1),
                },
                3,
                false,
                None,
            ),
            Step::Mem { store } => {
                let mem = parrot_isa::MemRef {
                    base: Reg::int(2),
                    offset: 0,
                    stream: 0,
                };
                if *store {
                    (
                        InstKind::Store {
                            src: Reg::int(1),
                            mem,
                        },
                        3,
                        false,
                        None,
                    )
                } else {
                    (
                        InstKind::Load {
                            dst: Reg::int(1),
                            mem,
                        },
                        3,
                        false,
                        None,
                    )
                }
            }
            Step::CondBr { taken, backward } => {
                let t = if *backward {
                    pc.saturating_sub(64).max(0x40_0000)
                } else {
                    pc + 64
                };
                (
                    InstKind::CondBranch { cond: Cond::Eq },
                    2,
                    *taken,
                    taken.then_some(t),
                )
            }
            Step::Jump => (InstKind::Jump, 2, true, Some(pc + 32)),
            Step::IndJump => (
                InstKind::IndirectJump { sel: Reg::int(3) },
                3,
                true,
                Some(pc + 48),
            ),
            Step::Call => (InstKind::Call, 5, true, Some(pc + 512)),
            Step::Return => (InstKind::Return, 1, true, Some(pc + 16)),
        };
        let next_pc = target.unwrap_or(pc + len);
        let has_mem = kind.mem_ref().is_some() || matches!(kind, InstKind::Call | InstKind::Return);
        out.push((
            DynInst {
                inst: 0,
                pc,
                len: len as u8,
                taken,
                next_pc,
                eff_addr: if has_mem { 0x1000 } else { 0 },
                has_mem,
            },
            kind,
        ));
        pc = next_pc;
    }
    out
}

fn check_selection_invariants(steps: &[Step], case: usize) {
    let stream = materialize(steps);
    let cfg = SelectionConfig::default();
    let mut sel = TraceSelector::new(cfg);
    let mut cands = Vec::new();
    for (seq, (d, kind)) in stream.iter().enumerate() {
        sel.step(d, kind, seq as u64, &mut cands);
    }
    sel.flush(&mut cands);

    // Every instruction lands in exactly one candidate, in order.
    let total: usize = cands.iter().map(|c| c.insts.len()).sum();
    assert_eq!(
        total,
        stream.len(),
        "case {case}: no instruction lost or duplicated"
    );
    let mut seq_expect = 0u64;
    for c in &cands {
        assert!(
            c.num_uops <= cfg.max_uops,
            "case {case}: capacity respected"
        );
        assert!(
            c.joins <= cfg.max_joins,
            "case {case}: join bound respected"
        );
        assert_eq!(
            c.tid.start_pc, c.insts[0].pc,
            "case {case}: TID starts at first pc"
        );
        assert_eq!(
            c.start_seq, seq_expect,
            "case {case}: candidates partition the stream"
        );
        seq_expect += c.insts.len() as u64;
        // Branch-direction bits mirror the embedded conditional branches.

        let dirs: Vec<bool> = c
            .insts
            .iter()
            .zip(c.start_seq..)
            .filter(|(_, seq)| matches!(stream[*seq as usize].1, InstKind::CondBranch { .. }))
            .map(|(ci, _)| ci.taken)
            .collect();
        assert_eq!(dirs.len(), c.tid.num_branches as usize, "case {case}");
        for (bi, d) in dirs.into_iter().enumerate() {
            assert_eq!(c.tid.dir(bi as u8), d, "case {case}");
        }
        // Uop accounting is exact.
        let uops: u32 = c
            .insts
            .iter()
            .zip(c.start_seq..)
            .map(|(_, seq)| stream[seq as usize].1.uop_count() as u32)
            .sum();
        assert_eq!(uops, c.num_uops, "case {case}");
    }
}

fn check_termination_rules(steps: &[Step], case: usize) {
    let stream = materialize(steps);
    let mut sel = TraceSelector::new(SelectionConfig::default());
    let mut cands = Vec::new();
    for (seq, (d, kind)) in stream.iter().enumerate() {
        sel.step(d, kind, seq as u64, &mut cands);
    }
    sel.flush(&mut cands);
    for c in &cands {
        // No instruction in the *interior* of a trace may be an indirect
        // jump or a backward-taken conditional branch (they terminate a
        // unit). Joined candidates legitimately contain backward taken
        // branches at unit boundaries (loop unrolling), so only unjoined
        // candidates are checked for the backward rule.
        for (k, (ci, seq)) in c.insts.iter().zip(c.start_seq..).enumerate() {
            if k + 1 == c.insts.len() {
                continue;
            }
            let kind = &stream[seq as usize].1;
            assert!(
                !matches!(kind, InstKind::IndirectJump { .. }),
                "case {case}: indirect jump inside a trace"
            );
            if c.joins == 1 && matches!(kind, InstKind::CondBranch { .. }) && ci.taken {
                assert!(
                    stream[seq as usize].0.next_pc >= ci.pc,
                    "case {case}: backward taken branch inside an unjoined trace"
                );
            }
        }
    }
}

#[test]
fn selection_invariants_hold() {
    let mut r = Xorshift64Star::seed_from_u64(0x5e1_0001);
    for case in 0..192 {
        let steps: Vec<Step> = (0..r.usize_in(1, 400)).map(|_| arb_step(&mut r)).collect();
        check_selection_invariants(&steps, case);
    }
}

#[test]
fn termination_rules_hold() {
    let mut r = Xorshift64Star::seed_from_u64(0x5e1_0002);
    for case in 0..192 {
        let steps: Vec<Step> = (0..r.usize_in(1, 300)).map(|_| arb_step(&mut r)).collect();
        check_termination_rules(&steps, case);
    }
}

#[test]
fn historical_regression_back_to_back_backward_loops() {
    // Shrunk failure case preserved from the former proptest suite.
    let steps = [
        Step::Alu,
        Step::CondBr {
            taken: true,
            backward: true,
        },
        Step::Alu,
        Step::CondBr {
            taken: true,
            backward: true,
        },
        Step::Alu,
        Step::Alu,
    ];
    check_selection_invariants(&steps, usize::MAX);
    check_termination_rules(&steps, usize::MAX);
}

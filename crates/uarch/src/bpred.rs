//! Branch prediction: a bimodal/gshare hybrid with a branch target buffer
//! and a return address stack.
//!
//! The paper's baseline `N` uses a 4K-entry predictor; PARROT models use a
//! 2K-entry branch predictor alongside the 2K-entry trace predictor
//! (§4.2 / Fig 4.7).

/// Configuration of the [`HybridPredictor`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BpredConfig {
    /// Entries in each direction table (bimodal, gshare, chooser).
    pub entries: u32,
    /// Global history bits used by the gshare component.
    pub history_bits: u32,
    /// Branch target buffer entries (direct-mapped).
    pub btb_entries: u32,
    /// Return address stack depth.
    pub ras_entries: u32,
}

impl BpredConfig {
    /// The baseline 4K-entry configuration (model `N`/`W`).
    pub fn baseline_4k() -> BpredConfig {
        BpredConfig {
            entries: 4096,
            history_bits: 12,
            btb_entries: 2048,
            ras_entries: 16,
        }
    }

    /// The 2K-entry configuration used alongside a trace predictor in
    /// PARROT models.
    pub fn parrot_2k() -> BpredConfig {
        BpredConfig {
            entries: 2048,
            history_bits: 11,
            btb_entries: 2048,
            ras_entries: 16,
        }
    }
}

/// Saturating 2-bit counter helpers.
#[inline]
fn bump(c: &mut u8, up: bool) {
    if up {
        *c = (*c + 1).min(3);
    } else {
        *c = c.saturating_sub(1);
    }
}

/// A classic McFarling-style hybrid: bimodal + gshare with a chooser,
/// plus BTB and RAS.
#[derive(Clone, Debug)]
pub struct HybridPredictor {
    cfg: BpredConfig,
    bimodal: Vec<u8>,
    gshare: Vec<u8>,
    chooser: Vec<u8>,
    history: u64,
    btb: Vec<(u64, u64)>, // (tag pc, target)
    ras: Vec<u64>,
}

impl HybridPredictor {
    /// Create a predictor with all counters weakly taken.
    pub fn new(cfg: BpredConfig) -> HybridPredictor {
        assert!(
            cfg.entries.is_power_of_two(),
            "table entries must be a power of two"
        );
        assert!(
            cfg.btb_entries.is_power_of_two(),
            "btb entries must be a power of two"
        );
        HybridPredictor {
            cfg,
            bimodal: vec![2; cfg.entries as usize],
            gshare: vec![2; cfg.entries as usize],
            chooser: vec![2; cfg.entries as usize],
            history: 0,
            btb: vec![(u64::MAX, 0); cfg.btb_entries as usize],
            ras: Vec::with_capacity(cfg.ras_entries as usize),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &BpredConfig {
        &self.cfg
    }

    fn idx(&self, pc: u64) -> usize {
        ((pc >> 1) % u64::from(self.cfg.entries)) as usize
    }

    fn gidx(&self, pc: u64) -> usize {
        let mask = u64::from(self.cfg.entries) - 1;
        (((pc >> 1) ^ (self.history & ((1 << self.cfg.history_bits) - 1))) & mask) as usize
    }

    /// Predict the direction of the conditional branch at `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        let b = self.bimodal[self.idx(pc)] >= 2;
        let g = self.gshare[self.gidx(pc)] >= 2;
        if self.chooser[self.idx(pc)] >= 2 {
            g
        } else {
            b
        }
    }

    /// Train on the resolved direction of the branch at `pc`.
    pub fn update(&mut self, pc: u64, taken: bool) {
        let bi = self.idx(pc);
        let gi = self.gidx(pc);
        let b_correct = (self.bimodal[bi] >= 2) == taken;
        let g_correct = (self.gshare[gi] >= 2) == taken;
        if b_correct != g_correct {
            bump(&mut self.chooser[bi], g_correct);
        }
        bump(&mut self.bimodal[bi], taken);
        bump(&mut self.gshare[gi], taken);
        self.history = (self.history << 1) | u64::from(taken);
    }

    /// Look up the target of a taken control transfer at `pc`.
    pub fn btb_lookup(&self, pc: u64) -> Option<u64> {
        let e = self.btb[(pc % u64::from(self.cfg.btb_entries)) as usize];
        if e.0 == pc {
            Some(e.1)
        } else {
            None
        }
    }

    /// Install/refresh a BTB entry.
    pub fn btb_update(&mut self, pc: u64, target: u64) {
        let i = (pc % u64::from(self.cfg.btb_entries)) as usize;
        self.btb[i] = (pc, target);
    }

    /// Push a return address on a call.
    pub fn ras_push(&mut self, ret: u64) {
        if self.ras.len() == self.cfg.ras_entries as usize {
            self.ras.remove(0);
        }
        self.ras.push(ret);
    }

    /// Pop the predicted return address.
    pub fn ras_pop(&mut self) -> Option<u64> {
        self.ras.pop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parrot_workloads::rng::Xorshift64Star;

    fn pred() -> HybridPredictor {
        HybridPredictor::new(BpredConfig::baseline_4k())
    }

    #[test]
    fn learns_a_strong_bias() {
        let mut p = pred();
        for _ in 0..32 {
            p.update(0x1000, true);
        }
        assert!(p.predict(0x1000));
        for _ in 0..32 {
            p.update(0x1000, false);
        }
        assert!(!p.predict(0x1000));
    }

    #[test]
    fn learns_a_periodic_pattern_via_history() {
        // Pattern T T N repeating: gshare should reach near-perfect accuracy.
        let mut p = pred();
        let pattern = [true, true, false];
        let mut correct = 0;
        let mut total = 0;
        for i in 0..3000usize {
            let t = pattern[i % 3];
            if i > 500 {
                total += 1;
                if p.predict(0xbeef0) == t {
                    correct += 1;
                }
            }
            p.update(0xbeef0, t);
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.95, "periodic accuracy {acc}");
    }

    #[test]
    fn random_branches_are_hard() {
        let mut p = pred();
        let mut rng = Xorshift64Star::seed_from_u64(9);
        let mut correct = 0;
        for _ in 0..4000 {
            let t = rng.chance(0.5);
            if p.predict(0x77) == t {
                correct += 1;
            }
            p.update(0x77, t);
        }
        let acc = correct as f64 / 4000.0;
        assert!((0.4..0.6).contains(&acc), "coin-flip accuracy {acc}");
    }

    #[test]
    fn btb_round_trips_and_conflicts() {
        let mut p = pred();
        p.btb_update(0x4000, 0x9000);
        assert_eq!(p.btb_lookup(0x4000), Some(0x9000));
        assert_eq!(p.btb_lookup(0x4002), None);
        // Conflicting pc (same set) evicts.
        let conflict = 0x4000 + u64::from(p.config().btb_entries);
        p.btb_update(conflict, 0x1234);
        assert_eq!(p.btb_lookup(0x4000), None);
    }

    #[test]
    fn ras_is_lifo_and_bounded() {
        let mut p = pred();
        for i in 0..20u64 {
            p.ras_push(i);
        }
        // Depth 16: oldest 4 were dropped.
        assert_eq!(p.ras_pop(), Some(19));
        for _ in 0..15 {
            p.ras_pop();
        }
        assert_eq!(p.ras_pop(), None);
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_rejected() {
        let _ = HybridPredictor::new(BpredConfig {
            entries: 1000,
            ..BpredConfig::baseline_4k()
        });
    }
}

//! Parametric set-associative caches and the simulated memory hierarchy
//! (L1I + L1D + unified L2 + memory), shared by every machine model.

/// Geometry and latency of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets (power of two).
    pub sets: u32,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
    /// Access latency in cycles (hit).
    pub latency: u32,
}

impl CacheConfig {
    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        u64::from(self.sets) * u64::from(self.ways) * u64::from(self.line_bytes)
    }

    /// 32 KiB, 4-way, 64 B lines, 2-cycle L1 instruction cache.
    pub fn l1i() -> CacheConfig {
        CacheConfig {
            sets: 128,
            ways: 4,
            line_bytes: 64,
            latency: 2,
        }
    }

    /// 32 KiB, 8-way, 64 B lines, 3-cycle L1 data cache.
    pub fn l1d() -> CacheConfig {
        CacheConfig {
            sets: 64,
            ways: 8,
            line_bytes: 64,
            latency: 2,
        }
    }

    /// 1 MiB, 8-way, 64 B lines, 12-cycle unified L2.
    pub fn l2() -> CacheConfig {
        CacheConfig {
            sets: 2048,
            ways: 8,
            line_bytes: 64,
            latency: 10,
        }
    }
}

/// A set-associative cache with true-LRU replacement (tags only — this is a
/// timing/energy model, data lives in the functional layer).
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    /// `tags[set * ways + way]`; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// Monotonic use stamps for LRU.
    stamps: Vec<u64>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// An empty cache with the given geometry.
    ///
    /// # Panics
    /// Panics unless `sets` and `line_bytes` are powers of two.
    pub fn new(cfg: CacheConfig) -> Cache {
        assert!(cfg.sets.is_power_of_two(), "sets must be a power of two");
        assert!(
            cfg.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let n = (cfg.sets * cfg.ways) as usize;
        Cache {
            cfg,
            tags: vec![u64::MAX; n],
            stamps: vec![0; n],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    fn set_of(&self, addr: u64) -> usize {
        let line = addr / u64::from(self.cfg.line_bytes);
        (line % u64::from(self.cfg.sets)) as usize
    }

    fn tag_of(&self, addr: u64) -> u64 {
        addr / u64::from(self.cfg.line_bytes)
    }

    /// Access `addr`; returns `true` on hit. Misses allocate (fill) the line,
    /// evicting the LRU way.
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = set * self.cfg.ways as usize;
        let ways = &mut self.tags[base..base + self.cfg.ways as usize];
        if let Some(w) = ways.iter().position(|t| *t == tag) {
            self.stamps[base + w] = self.tick;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        // Fill: evict LRU.
        let lru = (0..self.cfg.ways as usize)
            .min_by_key(|w| self.stamps[base + w])
            .expect("nonzero associativity");
        self.tags[base + lru] = tag;
        self.stamps[base + lru] = self.tick;
        false
    }

    /// Hit/miss counts so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Miss ratio so far (0 when unused).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// Where an access was finally serviced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServicedBy {
    /// Hit in the first level.
    L1,
    /// L1 miss, L2 hit.
    L2,
    /// Missed the whole hierarchy.
    Memory,
}

/// Result of a hierarchy access: total latency plus which level serviced it
/// (the caller emits the corresponding energy events).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessResult {
    /// Total access latency in cycles.
    pub latency: u32,
    /// Level that serviced the access.
    pub serviced_by: ServicedBy,
}

/// The simulated memory hierarchy: split L1s over a unified L2 over flat
/// memory.
#[derive(Clone, Debug)]
pub struct MemHierarchy {
    /// Instruction L1.
    pub l1i: Cache,
    /// Data L1.
    pub l1d: Cache,
    /// Unified second level.
    pub l2: Cache,
    /// Latency of a memory (L2 miss) access.
    pub mem_latency: u32,
}

impl MemHierarchy {
    /// Standard hierarchy used by every model in the study (§3.3).
    pub fn standard() -> MemHierarchy {
        MemHierarchy {
            l1i: Cache::new(CacheConfig::l1i()),
            l1d: Cache::new(CacheConfig::l1d()),
            l2: Cache::new(CacheConfig::l2()),
            mem_latency: 150,
        }
    }

    /// Instruction fetch access.
    pub fn access_inst(&mut self, addr: u64) -> AccessResult {
        Self::walk(&mut self.l1i, &mut self.l2, self.mem_latency, addr)
    }

    /// Data access (loads and committed stores).
    pub fn access_data(&mut self, addr: u64) -> AccessResult {
        Self::walk(&mut self.l1d, &mut self.l2, self.mem_latency, addr)
    }

    fn walk(l1: &mut Cache, l2: &mut Cache, mem_latency: u32, addr: u64) -> AccessResult {
        if l1.access(addr) {
            return AccessResult {
                latency: l1.config().latency,
                serviced_by: ServicedBy::L1,
            };
        }
        if l2.access(addr) {
            return AccessResult {
                latency: l1.config().latency + l2.config().latency,
                serviced_by: ServicedBy::L2,
            };
        }
        AccessResult {
            latency: l1.config().latency + l2.config().latency + mem_latency,
            serviced_by: ServicedBy::Memory,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(CacheConfig::l1d());
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1008), "same line");
        assert_eq!(c.stats(), (2, 1));
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 2-way cache, 1 set: third distinct line evicts the least recent.
        let mut c = Cache::new(CacheConfig {
            sets: 1,
            ways: 2,
            line_bytes: 64,
            latency: 1,
        });
        c.access(0x0); // A miss
        c.access(0x40); // B miss
        c.access(0x0); // A hit (B becomes LRU)
        c.access(0x80); // C miss, evicts B
        assert!(c.access(0x0), "A retained");
        assert!(!c.access(0x40), "B evicted");
    }

    #[test]
    fn working_set_larger_than_capacity_thrashes() {
        let mut c = Cache::new(CacheConfig {
            sets: 4,
            ways: 2,
            line_bytes: 64,
            latency: 1,
        });
        // Capacity 512B; stream over 4KiB repeatedly.
        for _ in 0..4 {
            for a in (0..4096u64).step_by(64) {
                c.access(a);
            }
        }
        assert!(c.miss_ratio() > 0.9, "miss ratio {}", c.miss_ratio());
    }

    #[test]
    fn hierarchy_latencies_stack() {
        let mut h = MemHierarchy::standard();
        let first = h.access_data(0x5000);
        assert_eq!(first.serviced_by, ServicedBy::Memory);
        assert_eq!(first.latency, 2 + 10 + 150);
        let second = h.access_data(0x5000);
        assert_eq!(second.serviced_by, ServicedBy::L1);
        assert_eq!(second.latency, 2);
        // Evicted from L1 but not L2 -> L2 hit. (Touch enough lines mapping
        // to the same L1 set.)
        let cfg = *h.l1d.config();
        for i in 1..=cfg.ways as u64 {
            h.access_data(0x5000 + i * u64::from(cfg.line_bytes) * u64::from(cfg.sets));
        }
        let third = h.access_data(0x5000);
        assert_eq!(third.serviced_by, ServicedBy::L2);
        assert_eq!(third.latency, 2 + 10);
    }

    #[test]
    fn capacities_match_paper_table() {
        assert_eq!(CacheConfig::l1i().capacity(), 32 * 1024);
        assert_eq!(CacheConfig::l1d().capacity(), 32 * 1024);
        assert_eq!(CacheConfig::l2().capacity(), 1024 * 1024);
    }
}

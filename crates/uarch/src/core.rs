//! The out-of-order superscalar execution core.
//!
//! One generic, width-configurable engine backs every machine model in the
//! study (the paper's "generic, highly configurable object-oriented
//! execution core", §3.1): rename with a register alias table, a unified
//! ROB, an issue window with per-class execution ports, a load/store queue
//! budget, and in-order commit. It is *trace-driven*: only correct-path
//! uops enter; branch mispredictions manifest as fetch stalls plus
//! wrong-path energy, and resolved mispredicts are reported so the front
//! end can model the redirect.

use crate::cache::{MemHierarchy, ServicedBy};
use parrot_energy::{EnergyAccount, EnergyModel, Event};
use parrot_isa::{ExecClass, Reg, Uop};
use parrot_telemetry::profile;

/// Per-class execution port counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PortCounts {
    /// Integer ALU ports (also execute multiplies, divides, nops).
    pub int_alu: u32,
    /// Memory ports (loads + store-address).
    pub mem: u32,
    /// Floating-point ports.
    pub fp: u32,
    /// Branch resolution ports.
    pub branch: u32,
    /// Packed/SIMD ports.
    pub simd: u32,
}

/// Execution-core configuration (one per machine model; Table 3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoreConfig {
    /// Macro-instructions fetched per cycle (cold front end).
    pub fetch_width: u32,
    /// Uops leaving decode per cycle.
    pub decode_uops: u32,
    /// Multi-uop (CISC) instructions decodable per cycle.
    pub max_complex: u32,
    /// Uops renamed/dispatched per cycle.
    pub rename_width: u32,
    /// Peak uops issued per cycle.
    pub issue_width: u32,
    /// Uops committed per cycle.
    pub commit_width: u32,
    /// Reorder buffer entries.
    pub rob_size: u32,
    /// Issue-window entries.
    pub iq_size: u32,
    /// Load/store queue entries.
    pub lsq_size: u32,
    /// Execution ports.
    pub ports: PortCounts,
    /// Front-end refill penalty after a resolved misprediction (cycles).
    pub mispredict_penalty: u32,
    /// In-order issue (§5's alternative execution model for a hot core):
    /// uops issue strictly in age order, stalling at the first non-ready
    /// one. Saves scheduler energy at some IPC cost.
    pub in_order: bool,
}

impl CoreConfig {
    /// The standard 4-wide OOO core (model `N`).
    pub fn narrow() -> CoreConfig {
        CoreConfig {
            fetch_width: 4,
            decode_uops: 6,
            max_complex: 1,
            rename_width: 4,
            issue_width: 4,
            commit_width: 4,
            rob_size: 128,
            iq_size: 32,
            lsq_size: 48,
            ports: PortCounts {
                int_alu: 3,
                mem: 2,
                fp: 2,
                branch: 1,
                simd: 1,
            },
            mispredict_penalty: 10,
            in_order: false,
        }
    }

    /// The theoretical 8-wide core (model `W`).
    pub fn wide() -> CoreConfig {
        CoreConfig {
            fetch_width: 8,
            decode_uops: 10,
            max_complex: 1,
            rename_width: 8,
            issue_width: 8,
            commit_width: 8,
            rob_size: 144,
            iq_size: 36,
            lsq_size: 64,
            ports: PortCounts {
                int_alu: 4,
                mem: 3,
                fp: 3,
                branch: 2,
                simd: 2,
            },
            mispredict_penalty: 10,
            in_order: false,
        }
    }

    /// An in-order variant of this core (issue stalls at the first
    /// non-ready uop) — the paper's §5 alternative execution model.
    pub fn into_in_order(mut self) -> CoreConfig {
        self.in_order = true;
        self
    }
}

/// A uop ready for rename/dispatch: the compact, pipeline-facing projection
/// of a [`Uop`] plus its dynamic context.
#[derive(Clone, Copy, Debug)]
pub struct DispatchUop {
    /// Execution class (port binding + latency).
    pub class: ExecClass,
    /// Registers read (including flags), capped at 4 — SIMD packs beyond
    /// that are approximated by their first lanes.
    pub reads: [Option<Reg>; 4],
    /// Registers written (including flags), capped at 4.
    pub writes: [Option<Reg>; 4],
    /// Effective address for memory uops.
    pub eff_addr: u64,
    /// Macro-instructions credited at this uop's commit. Cold uops carry 1
    /// on each instruction's final uop; an atomic trace carries its whole
    /// instruction count on its final uop (atomic commit accounting, robust
    /// to optimizer uop elimination).
    pub inst_credit: u32,
    /// This uop is a mispredicted control transfer: its completion triggers
    /// a front-end redirect.
    pub mispredict: bool,
    /// SIMD lane count (0 for scalar uops) — drives per-lane exec energy.
    pub simd_lanes: u8,
}

impl DispatchUop {
    /// Project a decoded [`Uop`] into dispatch form. `inst_credit` is the
    /// number of macro-instructions credited when this uop commits.
    pub fn from_uop(uop: &Uop, eff_addr: u64, inst_credit: u32) -> DispatchUop {
        let mut reads = [None; 4];
        let mut nr = 0;
        uop.for_each_use(|r| {
            if nr < 4 {
                reads[nr] = Some(r);
                nr += 1;
            }
        });
        let mut writes = [None; 4];
        let mut nw = 0;
        uop.for_each_def(|r| {
            if nw < 4 {
                writes[nw] = Some(r);
                nw += 1;
            }
        });
        let simd_lanes = match &uop.kind {
            parrot_isa::UopKind::Simd(p) => p.lanes.len() as u8,
            _ => 0,
        };
        DispatchUop {
            class: uop.exec_class(),
            reads,
            writes,
            eff_addr,
            inst_credit,
            mispredict: false,
            simd_lanes,
        }
    }
}

const NONE: u32 = u32::MAX;
/// Completion-bucket ring size; must exceed the longest latency.
const BUCKETS: usize = 256;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum UopState {
    Waiting,
    Issued,
    Done,
}

#[derive(Clone, Copy, Debug)]
struct RobEntry {
    state: UopState,
    class: ExecClass,
    dep_idx: [u32; 4],
    dep_seq: [u64; 4],
    writes: [u8; 4], // register indices, 255 = none
    seq: u64,
    eff_addr: u64,
    reads: u8,
    inst_credit: u32,
    mispredict: bool,
    simd_lanes: u8,
}

impl RobEntry {
    fn empty() -> RobEntry {
        RobEntry {
            state: UopState::Done,
            class: ExecClass::Nop,
            dep_idx: [NONE; 4],
            dep_seq: [0; 4],
            writes: [255; 4],
            seq: 0,
            eff_addr: 0,
            reads: 0,
            inst_credit: 0,
            mispredict: false,
            simd_lanes: 0,
        }
    }
}

/// Aggregate statistics of one core.
#[derive(Clone, Copy, Debug, Default)]
pub struct CoreStats {
    /// Uops committed.
    pub committed_uops: u64,
    /// Macro-instructions committed.
    pub committed_insts: u64,
    /// Uops issued to execution.
    pub issued_uops: u64,
    /// Loads that missed L1.
    pub l1d_misses: u64,
    /// Cycles in which nothing committed (stall visibility).
    pub commit_stall_cycles: u64,
    /// Issue cycles with an empty window (front-end starvation).
    pub iq_empty_cycles: u64,
    /// Issue cycles where the window was non-empty but nothing issued
    /// (dependency/port bound).
    pub issue_blocked_cycles: u64,
    /// Total issue-cycle count (denominator for the two above).
    pub issue_cycles: u64,
}

/// The out-of-order core. Drive it each cycle with
/// [`OooCore::writeback`], [`OooCore::commit`], [`OooCore::issue`] and
/// [`OooCore::dispatch`] (in that order) from the machine loop.
#[derive(Clone, Debug)]
pub struct OooCore {
    cfg: CoreConfig,
    rob: Vec<RobEntry>,
    head: u32,
    tail: u32,
    count: u32,
    next_seq: u64,
    rat: [u32; 192],
    rat_seq: [u64; 192],
    iq: Vec<u32>,
    lsq_count: u32,
    div_busy_until: u64,
    completions: Vec<Vec<u32>>,
    stats: CoreStats,
}

impl OooCore {
    /// An empty core.
    pub fn new(cfg: CoreConfig) -> OooCore {
        OooCore {
            cfg,
            rob: vec![RobEntry::empty(); cfg.rob_size as usize],
            head: 0,
            tail: 0,
            count: 0,
            next_seq: 1,
            rat: [NONE; 192],
            rat_seq: [0; 192],
            iq: Vec::with_capacity(cfg.iq_size as usize),
            lsq_count: 0,
            div_busy_until: 0,
            completions: vec![Vec::new(); BUCKETS],
            stats: CoreStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Statistics so far.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Is the pipeline drained?
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// In-flight uop count.
    pub fn occupancy(&self) -> u32 {
        self.count
    }

    /// Mark completions due at `now`; returns the resolution cycle of a
    /// completing mispredicted branch, if any (the front end resumes at
    /// `resolution + mispredict_penalty`).
    pub fn writeback(
        &mut self,
        now: u64,
        model: &EnergyModel,
        acct: &mut EnergyAccount,
    ) -> Option<u64> {
        let _stage = profile::stage(profile::Stage::Exec);
        let bucket = (now as usize) % BUCKETS;
        let mut resolved = None;
        // Take the bucket to appease the borrow checker; it is re-filled empty.
        let done = std::mem::take(&mut self.completions[bucket]);
        for idx in &done {
            let e = &mut self.rob[*idx as usize];
            if e.state != UopState::Issued {
                continue;
            }
            e.state = UopState::Done;
            acct.emit(model, Event::IqWakeup);
            let writes = e.writes;
            let mispredict = e.mispredict;
            for w in writes {
                if w != 255 {
                    acct.emit(model, Event::RegWrite);
                }
            }
            if mispredict {
                resolved = Some(now);
            }
        }
        self.completions[bucket] = done;
        self.completions[bucket].clear();
        resolved
    }

    /// Retire up to `commit_width` completed uops from the ROB head. Stores
    /// access the data cache at retirement. Returns (uops, insts) committed.
    pub fn commit(
        &mut self,
        now: u64,
        mem: &mut MemHierarchy,
        model: &EnergyModel,
        acct: &mut EnergyAccount,
    ) -> (u32, u32) {
        let _ = now;
        let _stage = profile::stage(profile::Stage::Exec);
        let mut uops = 0;
        let mut insts = 0;
        while self.count > 0 && uops < self.cfg.commit_width {
            let h = self.head as usize;
            if self.rob[h].state != UopState::Done {
                break;
            }
            let e = self.rob[h];
            // Free the RAT mapping if this entry still owns it.
            for w in e.writes {
                if w != 255
                    && self.rat[w as usize] == self.head
                    && self.rat_seq[w as usize] == e.seq
                {
                    self.rat[w as usize] = NONE;
                }
            }
            if e.class == ExecClass::Store {
                let r = mem.access_data(e.eff_addr);
                emit_data_events(r.serviced_by, model, acct);
                self.lsq_count = self.lsq_count.saturating_sub(1);
            }
            if e.class == ExecClass::Load {
                self.lsq_count = self.lsq_count.saturating_sub(1);
            }
            acct.emit(model, Event::CommitUop);
            acct.emit(model, Event::RobRead);
            self.stats.committed_uops += 1;
            uops += 1;
            if e.inst_credit > 0 {
                acct.emit_n(model, Event::CommitInst, u64::from(e.inst_credit));
                self.stats.committed_insts += u64::from(e.inst_credit);
                insts += e.inst_credit;
            }
            self.head = (self.head + 1) % self.cfg.rob_size;
            self.count -= 1;
        }
        if uops == 0 {
            self.stats.commit_stall_cycles += 1;
        }
        (uops, insts)
    }

    /// Select and begin execution of ready uops, oldest first, bounded by
    /// issue width and port counts.
    pub fn issue(
        &mut self,
        now: u64,
        mem: &mut MemHierarchy,
        model: &EnergyModel,
        acct: &mut EnergyAccount,
    ) {
        let _stage = profile::stage(profile::Stage::Exec);
        self.stats.issue_cycles += 1;
        if self.iq.is_empty() {
            self.stats.iq_empty_cycles += 1;
        }
        // In-order issue examines the window in age order and stalls at the
        // first non-ready uop; the window is re-sorted each cycle because
        // issue removal perturbs it.
        if self.cfg.in_order {
            let rob = &self.rob;
            self.iq.sort_unstable_by_key(|i| rob[*i as usize].seq);
        }
        let mut issued = 0u32;
        let mut ports_int = self.cfg.ports.int_alu;
        let mut ports_mem = self.cfg.ports.mem;
        let mut ports_fp = self.cfg.ports.fp;
        let mut ports_br = self.cfg.ports.branch;
        let mut ports_simd = self.cfg.ports.simd;
        let mut i = 0;
        while i < self.iq.len() && issued < self.cfg.issue_width {
            let idx = self.iq[i] as usize;
            let ready = {
                let e = &self.rob[idx];
                (0..4).all(|k| {
                    let d = e.dep_idx[k];
                    d == NONE || {
                        let p = &self.rob[d as usize];
                        p.seq != e.dep_seq[k] || p.state == UopState::Done
                    }
                })
            };
            if !ready {
                if self.cfg.in_order {
                    break; // strict age order: stall at the first non-ready uop
                }
                i += 1;
                continue;
            }
            let class = self.rob[idx].class;
            let port = match class {
                ExecClass::IntAlu | ExecClass::IntMul | ExecClass::Nop => &mut ports_int,
                ExecClass::IntDiv => {
                    if now < self.div_busy_until {
                        if self.cfg.in_order {
                            break;
                        }
                        i += 1;
                        continue;
                    }
                    &mut ports_int
                }
                ExecClass::FpAdd | ExecClass::FpMul | ExecClass::FpDiv => &mut ports_fp,
                ExecClass::Load | ExecClass::Store => &mut ports_mem,
                ExecClass::Branch => &mut ports_br,
                ExecClass::Simd => &mut ports_simd,
            };
            if *port == 0 {
                if self.cfg.in_order {
                    break;
                }
                i += 1;
                continue;
            }
            *port -= 1;

            // Compute latency (loads probe the hierarchy now).
            let latency = match class {
                ExecClass::IntAlu | ExecClass::Branch | ExecClass::Nop | ExecClass::Store => 1,
                ExecClass::IntMul => 3,
                ExecClass::IntDiv => 16,
                ExecClass::FpAdd => 3,
                ExecClass::FpMul => 4,
                ExecClass::FpDiv => 18,
                ExecClass::Simd => 2,
                ExecClass::Load => {
                    let r = mem.access_data(self.rob[idx].eff_addr);
                    emit_data_events(r.serviced_by, model, acct);
                    if r.serviced_by != ServicedBy::L1 {
                        self.stats.l1d_misses += 1;
                    }
                    r.latency
                }
            } as u64;

            // Energy for select, operand reads and the operation itself.
            acct.emit(model, Event::IqSelect);
            acct.emit_n(model, Event::RegRead, u64::from(self.rob[idx].reads));
            match class {
                ExecClass::IntAlu | ExecClass::Nop => acct.emit(model, Event::ExecAlu),
                ExecClass::IntMul => acct.emit(model, Event::ExecMul),
                ExecClass::IntDiv => acct.emit(model, Event::ExecDiv),
                ExecClass::FpAdd => acct.emit(model, Event::ExecFpAdd),
                ExecClass::FpMul => acct.emit(model, Event::ExecFpMul),
                ExecClass::FpDiv => acct.emit(model, Event::ExecFpDiv),
                ExecClass::Branch => acct.emit(model, Event::ExecAlu),
                ExecClass::Simd => acct.emit_n(
                    model,
                    Event::ExecSimdLane,
                    u64::from(self.rob[idx].simd_lanes.max(1)),
                ),
                ExecClass::Load | ExecClass::Store => acct.emit(model, Event::AguCalc),
            }

            let complete = now + latency;
            if class == ExecClass::IntDiv {
                self.div_busy_until = complete;
            }
            self.rob[idx].state = UopState::Issued;
            self.completions[(complete as usize) % BUCKETS].push(idx as u32);
            if self.cfg.in_order {
                // Preserve age order for the strict in-order scan.
                self.iq.remove(i);
            } else {
                // swap_remove breaks age order within the window; re-examine
                // the swapped-in element at the same position next iteration.
                self.iq.swap_remove(i);
            }
            issued += 1;
            self.stats.issued_uops += 1;
        }
        if issued == 0 && !self.iq.is_empty() {
            self.stats.issue_blocked_cycles += 1;
        }
    }

    /// Can another uop be dispatched this cycle (structural hazards only;
    /// the caller enforces rename width)?
    pub fn can_dispatch(&self, d: &DispatchUop) -> bool {
        if self.count >= self.cfg.rob_size {
            return false;
        }
        if self.iq.len() >= self.cfg.iq_size as usize {
            return false;
        }
        if matches!(d.class, ExecClass::Load | ExecClass::Store)
            && self.lsq_count >= self.cfg.lsq_size
        {
            return false;
        }
        true
    }

    /// Rename and insert one uop.
    ///
    /// # Panics
    /// Panics if [`OooCore::can_dispatch`] would return false.
    pub fn dispatch(&mut self, d: &DispatchUop, model: &EnergyModel, acct: &mut EnergyAccount) {
        assert!(self.can_dispatch(d), "dispatch without capacity check");
        let idx = self.tail;
        let seq = self.next_seq;
        self.next_seq += 1;

        let mut e = RobEntry::empty();
        e.state = UopState::Waiting;
        e.class = d.class;
        e.seq = seq;
        e.eff_addr = d.eff_addr;
        e.inst_credit = d.inst_credit;
        e.mispredict = d.mispredict;
        e.simd_lanes = d.simd_lanes;

        let mut nr = 0u8;
        for (k, r) in d.reads.iter().enumerate() {
            if let Some(r) = r {
                nr += 1;
                let p = self.rat[r.index()];
                if p != NONE {
                    e.dep_idx[k] = p;
                    e.dep_seq[k] = self.rat_seq[r.index()];
                }
            }
        }
        e.reads = nr;
        for (k, w) in d.writes.iter().enumerate() {
            if let Some(w) = w {
                e.writes[k] = w.index() as u8;
                self.rat[w.index()] = idx;
                self.rat_seq[w.index()] = seq;
            }
        }

        if matches!(d.class, ExecClass::Load | ExecClass::Store) {
            self.lsq_count += 1;
        }
        self.rob[idx as usize] = e;
        self.iq.push(idx);
        self.tail = (self.tail + 1) % self.cfg.rob_size;
        self.count += 1;

        acct.emit(model, Event::RenameUop);
        acct.emit(model, Event::RobWrite);
        acct.emit(model, Event::IqInsert);
    }
}

/// Emit the energy events for a data access serviced at `level`.
pub fn emit_data_events(level: ServicedBy, model: &EnergyModel, acct: &mut EnergyAccount) {
    acct.emit(model, Event::L1dAccess);
    match level {
        ServicedBy::L1 => {}
        ServicedBy::L2 => {
            acct.emit(model, Event::L1dMiss);
            acct.emit(model, Event::L2Access);
        }
        ServicedBy::Memory => {
            acct.emit(model, Event::L1dMiss);
            acct.emit(model, Event::L2Access);
            acct.emit(model, Event::MemAccess);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parrot_energy::EnergyConfig;
    use parrot_isa::{AluOp, Cond, Uop};

    struct Rig {
        core: OooCore,
        mem: MemHierarchy,
        model: EnergyModel,
        acct: EnergyAccount,
        now: u64,
    }

    impl Rig {
        fn new() -> Rig {
            Rig {
                core: OooCore::new(CoreConfig::narrow()),
                mem: MemHierarchy::standard(),
                model: EnergyModel::new(&EnergyConfig::narrow()),
                acct: EnergyAccount::new(),
                now: 0,
            }
        }

        fn cycle(&mut self) -> (u32, u32) {
            self.core.writeback(self.now, &self.model, &mut self.acct);
            let c = self
                .core
                .commit(self.now, &mut self.mem, &self.model, &mut self.acct);
            self.core
                .issue(self.now, &mut self.mem, &self.model, &mut self.acct);
            self.now += 1;
            c
        }

        fn run_until_empty(&mut self, max: u64) -> (u64, u64) {
            let mut uops = 0u64;
            let mut insts = 0u64;
            for _ in 0..max {
                let (u, i) = self.cycle();
                uops += u64::from(u);
                insts += u64::from(i);
                if self.core.is_empty() {
                    break;
                }
            }
            (uops, insts)
        }

        fn dispatch(&mut self, d: DispatchUop) {
            assert!(self.core.can_dispatch(&d));
            self.core.dispatch(&d, &self.model, &mut self.acct);
        }
    }

    fn alu(dst: u8, a: u8, b: u8, last: bool) -> DispatchUop {
        let u = Uop::alu(AluOp::Add, Reg::int(dst), Reg::int(a), Reg::int(b));
        DispatchUop::from_uop(&u, 0, u32::from(last))
    }

    #[test]
    fn independent_uops_commit_quickly() {
        let mut rig = Rig::new();
        for i in 0..4 {
            rig.dispatch(alu(i, i, i, true));
        }
        let (uops, insts) = rig.run_until_empty(100);
        assert_eq!(uops, 4);
        assert_eq!(insts, 4);
        // 4 independent ALU uops on a 4-wide machine: a handful of cycles.
        assert!(rig.now <= 6, "took {} cycles", rig.now);
    }

    #[test]
    fn dependency_chain_serializes() {
        let mut rig = Rig::new();
        // r1 = r0+r0; r2 = r1+r1; ... chain of 8.
        for i in 0..8 {
            rig.dispatch(alu(i + 1, i, i, true));
        }
        let (uops, _) = rig.run_until_empty(100);
        assert_eq!(uops, 8);
        assert!(rig.now >= 8, "chain must serialize, took {}", rig.now);
    }

    #[test]
    fn load_miss_takes_memory_latency() {
        let mut rig = Rig::new();
        let u = Uop::load(Reg::int(1), Reg::int(2));
        rig.dispatch(DispatchUop::from_uop(&u, 0x0dea_d000, 1));
        rig.run_until_empty(400);
        assert!(
            rig.now >= 150,
            "cold load must reach memory, took {}",
            rig.now
        );
        // Same line again: hits L1.
        let mut cycles_before = rig.now;
        let u2 = Uop::load(Reg::int(3), Reg::int(2));
        rig.dispatch(DispatchUop::from_uop(&u2, 0x0dea_d000, 1));
        rig.run_until_empty(400);
        cycles_before = rig.now - cycles_before;
        assert!(cycles_before < 10, "warm load took {cycles_before}");
    }

    #[test]
    fn mispredict_resolution_is_reported() {
        let mut rig = Rig::new();
        let mut b = DispatchUop::from_uop(&Uop::branch(Cond::Eq), 0, 1);
        b.mispredict = true;
        rig.dispatch(b);
        let mut resolved = None;
        for _ in 0..20 {
            resolved = resolved.or(rig.core.writeback(rig.now, &rig.model, &mut rig.acct));
            rig.core
                .commit(rig.now, &mut rig.mem, &rig.model, &mut rig.acct);
            rig.core
                .issue(rig.now, &mut rig.mem, &rig.model, &mut rig.acct);
            rig.now += 1;
        }
        assert!(resolved.is_some(), "mispredict resolution must surface");
    }

    #[test]
    fn rob_capacity_blocks_dispatch() {
        let mut rig = Rig::new();
        let d = alu(1, 0, 0, true);
        let mut n = 0;
        while rig.core.can_dispatch(&d) {
            rig.core.dispatch(&d, &rig.model, &mut rig.acct);
            n += 1;
            // Window fills first (iq_size=32) since nothing issues.
            assert!(n <= 128, "dispatch never blocked");
        }
        assert_eq!(n, 32, "issue window should be the first structural limit");
    }

    #[test]
    fn commit_is_in_order() {
        let mut rig = Rig::new();
        // First a long-latency divide, then fast ALUs: ALUs finish first but
        // must not commit before the divide.
        let mut div = alu(1, 0, 0, true);
        div.class = ExecClass::IntDiv;
        rig.dispatch(div);
        for i in 0..3 {
            rig.dispatch(alu(i + 2, 10, 11, true));
        }
        let mut committed_any_before_div = false;
        for _ in 0..5 {
            let (u, _) = rig.cycle();
            if u > 0 {
                committed_any_before_div = true;
            }
        }
        assert!(
            !committed_any_before_div,
            "nothing may commit before the div at head"
        );
        let (uops, _) = rig.run_until_empty(100);
        assert_eq!(uops, 4);
    }

    #[test]
    fn wide_core_has_more_throughput() {
        let run = |cfg: CoreConfig| {
            let mut rig = Rig::new();
            rig.core = OooCore::new(cfg);
            let mut dispatched = 0u32;
            let mut cycles = 0u64;
            let width = cfg.rename_width;
            while rig.core.stats().committed_uops < 2000 && cycles < 10_000 {
                rig.core.writeback(rig.now, &rig.model, &mut rig.acct);
                rig.core
                    .commit(rig.now, &mut rig.mem, &rig.model, &mut rig.acct);
                rig.core
                    .issue(rig.now, &mut rig.mem, &rig.model, &mut rig.acct);
                for i in 0..width {
                    let d = alu(((dispatched + i) % 14) as u8 + 1, 0, 0, true);
                    if rig.core.can_dispatch(&d) {
                        rig.core.dispatch(&d, &rig.model, &mut rig.acct);
                        dispatched += 1;
                    }
                }
                rig.now += 1;
                cycles += 1;
            }
            cycles
        };
        let narrow = run(CoreConfig::narrow());
        let wide = run(CoreConfig::wide());
        assert!(
            (wide as f64) < narrow as f64 * 0.82,
            "wide {wide} should be well under narrow {narrow}"
        );
    }
}

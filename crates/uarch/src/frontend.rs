//! The cold-pipeline front end: I-cache fetch along the (predicted) path,
//! branch prediction, and width/complexity-constrained CISC decode.
//!
//! Trace-driven discipline: only correct-path instructions are delivered.
//! A misprediction stalls fetch at the offending branch; when the core
//! reports the branch resolved, fetch resumes after the redirect penalty,
//! and the wrong-path energy the real machine would have spent is charged
//! as flush activity.

use crate::bpred::{BpredConfig, HybridPredictor};
use crate::cache::{MemHierarchy, ServicedBy};
use crate::core::{CoreConfig, DispatchUop};
use crate::oracle::OracleStream;
use parrot_energy::{EnergyAccount, EnergyModel, Event};
use parrot_isa::InstKind;
use parrot_telemetry::profile;
use parrot_workloads::Workload;
use std::collections::VecDeque;

/// Front-end statistics (feeds Fig 4.7).
#[derive(Clone, Copy, Debug, Default)]
pub struct FrontEndStats {
    /// Conditional branches fetched.
    pub cond_branches: u64,
    /// Conditional direction mispredictions.
    pub cond_mispredicts: u64,
    /// Indirect-target (incl. return) mispredictions.
    pub target_mispredicts: u64,
    /// Macro-instructions fetched.
    pub fetched_insts: u64,
    /// Uops delivered to rename.
    pub fetched_uops: u64,
    /// I-cache misses.
    pub icache_misses: u64,
    /// Fault-recovery redirects: restarts of cold fetch forced by a
    /// corrupted or stale trace caught at hot fetch.
    pub redirects: u64,
}

/// The cold front end: fetch + predict + decode for one machine.
#[derive(Clone, Debug)]
pub struct ColdFrontEnd {
    /// The branch predictor (public for inspection in tests/figures).
    pub bpred: HybridPredictor,
    cfg: CoreConfig,
    /// Fetch is blocked until this cycle (mispredict redirect, I-cache miss,
    /// BTB bubble).
    resume_at: u64,
    /// Set while a mispredicted branch is unresolved.
    waiting_on_branch: bool,
    stats: FrontEndStats,
}

impl ColdFrontEnd {
    /// A fresh front end.
    pub fn new(cfg: CoreConfig, bpred_cfg: BpredConfig) -> ColdFrontEnd {
        ColdFrontEnd {
            bpred: HybridPredictor::new(bpred_cfg),
            cfg,
            resume_at: 0,
            waiting_on_branch: false,
            stats: FrontEndStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> &FrontEndStats {
        &self.stats
    }

    /// Is fetch stalled on an unresolved mispredicted branch?
    pub fn waiting_on_branch(&self) -> bool {
        self.waiting_on_branch
    }

    /// May the front end (cold or hot) fetch at `cycle`? False while a
    /// mispredicted branch is unresolved or a redirect/miss stall is
    /// pending.
    pub fn ready(&self, cycle: u64) -> bool {
        !self.waiting_on_branch && cycle >= self.resume_at
    }

    /// The core resolved the outstanding mispredicted branch at `cycle`;
    /// fetch resumes after the redirect penalty.
    pub fn branch_resolved(&mut self, cycle: u64) {
        if self.waiting_on_branch {
            self.waiting_on_branch = false;
            self.resume_at = self
                .resume_at
                .max(cycle + u64::from(self.cfg.mispredict_penalty));
        }
    }

    /// Block fetch until `cycle` (used by the machine for trace-abort
    /// restarts and state switches).
    pub fn block_until(&mut self, cycle: u64) {
        self.resume_at = self.resume_at.max(cycle);
    }

    /// Fault-recovery redirect: a corrupted or stale trace was caught at hot
    /// fetch, so the machine falls back to cold fetch after `penalty`
    /// cycles (the same pipeline-restart cost as a trace abort).
    pub fn redirect(&mut self, now: u64, penalty: u32) {
        self.resume_at = self.resume_at.max(now + u64::from(penalty));
        self.stats.redirects += 1;
    }

    /// Fetch and decode one cycle's worth of instructions from the oracle,
    /// appending dispatchable uops to `out`.
    ///
    /// Stops early at: fetch/decode width, a complex-decode limit, a
    /// predicted-taken branch (one per cycle), an I-cache miss, a BTB miss
    /// bubble, or a misprediction (which stalls until resolved).
    #[allow(clippy::too_many_arguments)]
    pub fn fetch_cycle(
        &mut self,
        now: u64,
        oracle: &mut OracleStream<'_>,
        wl: &Workload,
        mem: &mut MemHierarchy,
        model: &EnergyModel,
        acct: &mut EnergyAccount,
        out: &mut VecDeque<DispatchUop>,
    ) {
        let _stage = profile::stage(profile::Stage::Frontend);
        if now < self.resume_at || self.waiting_on_branch {
            return;
        }
        // Keep the decoupling queue shallow.
        if out.len() >= 3 * self.cfg.decode_uops as usize {
            return;
        }
        let mut insts = 0u32;
        let mut uops = 0u32;
        let mut complex = 0u32;
        let mut line_this_cycle = u64::MAX;

        while insts < self.cfg.fetch_width {
            let Some(d) = oracle.peek(0) else { break };
            let decoded = wl.decoded.uops(d.inst);
            let n = decoded.len() as u32;
            if uops + n > self.cfg.decode_uops {
                break;
            }
            if n > 1 && complex >= self.cfg.max_complex {
                break;
            }
            // I-cache: one access per distinct line touched.
            let line = d.pc / 64;
            if line != line_this_cycle {
                acct.emit(model, Event::IcacheAccess);
                let r = mem.access_inst(d.pc);
                if r.serviced_by != ServicedBy::L1 {
                    acct.emit(model, Event::IcacheMiss);
                    if r.serviced_by == ServicedBy::Memory {
                        acct.emit(model, Event::L2Access);
                        acct.emit(model, Event::MemAccess);
                    }
                    self.stats.icache_misses += 1;
                    self.resume_at = now + u64::from(r.latency);
                    break;
                }
                line_this_cycle = line;
            }

            // Branch prediction.
            let inst = wl.program.inst(d.inst);
            let mut mispredict = false;
            let mut btb_bubble = false;
            match inst.kind {
                InstKind::CondBranch { .. } => {
                    acct.emit(model, Event::BpredLookup);
                    let pred = self.bpred.predict(d.pc);
                    self.bpred.update(d.pc, d.taken);
                    acct.emit(model, Event::BpredUpdate);
                    self.stats.cond_branches += 1;
                    if pred != d.taken {
                        mispredict = true;
                        self.stats.cond_mispredicts += 1;
                    } else if d.taken {
                        acct.emit(model, Event::BtbAccess);
                        if self.bpred.btb_lookup(d.pc) != Some(d.next_pc) {
                            btb_bubble = true;
                            self.bpred.btb_update(d.pc, d.next_pc);
                        }
                    }
                }
                InstKind::Jump => {
                    acct.emit(model, Event::BtbAccess);
                    if self.bpred.btb_lookup(d.pc) != Some(d.next_pc) {
                        btb_bubble = true;
                        self.bpred.btb_update(d.pc, d.next_pc);
                    }
                }
                InstKind::Call => {
                    acct.emit(model, Event::BtbAccess);
                    acct.emit(model, Event::RasAccess);
                    self.bpred.ras_push(d.pc + u64::from(d.len));
                    if self.bpred.btb_lookup(d.pc) != Some(d.next_pc) {
                        btb_bubble = true;
                        self.bpred.btb_update(d.pc, d.next_pc);
                    }
                }
                InstKind::Return => {
                    acct.emit(model, Event::RasAccess);
                    let pred = self.bpred.ras_pop();
                    if pred != Some(d.next_pc) {
                        mispredict = true;
                        self.stats.target_mispredicts += 1;
                    }
                }
                InstKind::IndirectJump { .. } => {
                    acct.emit(model, Event::BtbAccess);
                    if self.bpred.btb_lookup(d.pc) != Some(d.next_pc) {
                        mispredict = true;
                        self.stats.target_mispredicts += 1;
                    }
                    self.bpred.btb_update(d.pc, d.next_pc);
                }
                _ => {}
            }

            // Decode and deliver.
            if n > 1 {
                acct.emit(model, Event::DecodeComplex);
                complex += 1;
            } else {
                acct.emit(model, Event::DecodeSimple);
            }
            for (k, u) in decoded.iter().enumerate() {
                let last = k + 1 == decoded.len();
                let mut du = DispatchUop::from_uop(u, d.eff_addr, u32::from(last));
                if mispredict && last {
                    du.mispredict = true;
                }
                out.push_back(du);
            }
            uops += n;
            insts += 1;
            self.stats.fetched_insts += 1;
            self.stats.fetched_uops += u64::from(n);
            oracle.pop();

            if mispredict {
                // Fetch stalls until the core resolves this branch; the
                // wrong-path activity the real machine would burn is charged
                // as flush energy.
                self.waiting_on_branch = true;
                acct.emit_n(
                    model,
                    Event::FlushUop,
                    u64::from(self.cfg.decode_uops) * u64::from(self.cfg.mispredict_penalty) / 2,
                );
                break;
            }
            if btb_bubble {
                self.resume_at = now + 2;
                break;
            }
            if d.taken {
                break; // one taken branch per fetch cycle
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parrot_energy::EnergyConfig;
    use parrot_workloads::{app_by_name, AppProfile, Suite};

    struct Rig {
        wl: Workload,
        mem: MemHierarchy,
        model: EnergyModel,
        acct: EnergyAccount,
        fe: ColdFrontEnd,
        out: VecDeque<DispatchUop>,
    }

    fn rig(profile: &AppProfile) -> Rig {
        Rig {
            wl: Workload::build(profile),
            mem: MemHierarchy::standard(),
            model: EnergyModel::new(&EnergyConfig::narrow()),
            acct: EnergyAccount::new(),
            fe: ColdFrontEnd::new(CoreConfig::narrow(), BpredConfig::baseline_4k()),
            out: VecDeque::new(),
        }
    }

    #[test]
    fn delivers_uops_in_order_with_boundaries() {
        let mut r = rig(&AppProfile::suite_base(Suite::SpecInt));
        let mut oracle = OracleStream::new(r.wl.engine(), 2_000);
        let mut now = 0u64;
        let mut insts = 0u64;
        while !oracle.exhausted() && now < 100_000 {
            r.fe.fetch_cycle(
                now,
                &mut oracle,
                &r.wl,
                &mut r.mem,
                &r.model,
                &mut r.acct,
                &mut r.out,
            );
            // Drain the queue, counting macro boundaries; unstick mispredicts
            // by pretending instant resolution.
            while let Some(d) = r.out.pop_front() {
                if d.inst_credit > 0 {
                    insts += u64::from(d.inst_credit);
                }
                if d.mispredict {
                    r.fe.branch_resolved(now);
                }
            }
            now += 1;
        }
        assert_eq!(insts, 2_000, "every instruction must arrive exactly once");
    }

    #[test]
    fn branch_mispredicts_stall_fetch() {
        let mut r = rig(&AppProfile::suite_base(Suite::SpecInt));
        let mut oracle = OracleStream::new(r.wl.engine(), 5_000);
        let mut stall_seen = false;
        let mut now = 0;
        while !oracle.exhausted() && now < 50_000 {
            r.fe.fetch_cycle(
                now,
                &mut oracle,
                &r.wl,
                &mut r.mem,
                &r.model,
                &mut r.acct,
                &mut r.out,
            );
            if r.fe.waiting_on_branch() {
                stall_seen = true;
                let before = oracle.cursor();
                r.fe.fetch_cycle(
                    now + 1,
                    &mut oracle,
                    &r.wl,
                    &mut r.mem,
                    &r.model,
                    &mut r.acct,
                    &mut r.out,
                );
                assert_eq!(oracle.cursor(), before, "no fetch while waiting on branch");
                r.fe.branch_resolved(now + 1);
                let penalty = u64::from(CoreConfig::narrow().mispredict_penalty);
                r.fe.fetch_cycle(
                    now + 2,
                    &mut oracle,
                    &r.wl,
                    &mut r.mem,
                    &r.model,
                    &mut r.acct,
                    &mut r.out,
                );
                assert_eq!(oracle.cursor(), before, "redirect penalty must elapse");
                now += 2 + penalty;
                r.out.clear();
                continue;
            }
            r.out.clear();
            now += 1;
        }
        assert!(stall_seen, "SpecInt must mispredict sometimes");
    }

    #[test]
    fn specfp_predicts_better_than_specint() {
        let rate = |profile: &AppProfile| {
            let mut r = rig(profile);
            let mut oracle = OracleStream::new(r.wl.engine(), 60_000);
            let mut now = 0;
            while !oracle.exhausted() && now < 2_000_000 {
                r.fe.fetch_cycle(
                    now,
                    &mut oracle,
                    &r.wl,
                    &mut r.mem,
                    &r.model,
                    &mut r.acct,
                    &mut r.out,
                );
                if r.fe.waiting_on_branch() {
                    r.fe.branch_resolved(now);
                }
                r.out.clear();
                now += 1;
            }
            let s = r.fe.stats();
            s.cond_mispredicts as f64 / s.cond_branches.max(1) as f64
        };
        let int_rate = rate(&app_by_name("gcc").unwrap());
        let fp_rate = rate(&app_by_name("swim").unwrap());
        assert!(
            fp_rate < int_rate,
            "SpecFP ({fp_rate:.3}) must predict better than SpecInt ({int_rate:.3})"
        );
        assert!(
            int_rate > 0.02,
            "SpecInt should be nontrivially mispredicted: {int_rate:.4}"
        );
        assert!(
            fp_rate < 0.08,
            "swim should be highly predictable: {fp_rate:.4}"
        );
    }

    #[test]
    fn fetch_respects_width() {
        let mut r = rig(&AppProfile::suite_base(Suite::SpecFp));
        let mut oracle = OracleStream::new(r.wl.engine(), 10_000);
        for now in 0..2_000u64 {
            let before = oracle.cursor();
            r.fe.fetch_cycle(
                now,
                &mut oracle,
                &r.wl,
                &mut r.mem,
                &r.model,
                &mut r.acct,
                &mut r.out,
            );
            let fetched = oracle.cursor() - before;
            assert!(fetched <= u64::from(CoreConfig::narrow().fetch_width));
            if r.fe.waiting_on_branch() {
                r.fe.branch_resolved(now);
            }
            r.out.clear();
        }
    }
}

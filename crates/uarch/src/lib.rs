//! # parrot-uarch
//!
//! The cycle-level microarchitecture substrate of the PARROT reproduction:
//! branch predictors ([`bpred`]), a parametric cache hierarchy ([`cache`]),
//! a rewindable oracle over the committed stream ([`oracle`]), the
//! width-configurable out-of-order core ([`core`]) and the cold-pipeline
//! front end ([`frontend`]).
//!
//! This is the stand-in for the paper's in-house performance simulator
//! (§3.1): trace-driven, with a full memory hierarchy and a generic
//! execution core instantiated at different widths for the `N`/`W` family
//! of models. The PARROT-specific machinery (trace cache, filters,
//! optimizer, fetch selector) lives in `parrot-trace`, `parrot-opt` and
//! `parrot-core`, and plugs into the same [`core::OooCore`].
//!
//! ```
//! use parrot_uarch::core::{CoreConfig, OooCore};
//!
//! let core = OooCore::new(CoreConfig::narrow());
//! assert!(core.is_empty());
//! ```

#![warn(missing_docs)]

pub mod bpred;
pub mod cache;
pub mod core;
pub mod frontend;
pub mod oracle;

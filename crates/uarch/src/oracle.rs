//! A rewindable window over the committed instruction stream.
//!
//! Trace-driven simulation consumes the architectural (oracle) stream in
//! order, but PARROT needs two extra capabilities: *peeking ahead* (to match
//! a predicted trace against the upcoming path) and *rewinding* (an aborted
//! atomic trace restores state to the trace start, so its instructions are
//! re-fetched cold). [`OracleStream`] buffers a sliding window to support
//! both.

use parrot_workloads::{DynInst, ExecutionEngine, StreamSource};
use std::collections::VecDeque;

/// How many already-consumed instructions stay buffered for rewind (must
/// exceed the largest trace: 64 uops ≥ 64 instructions).
const RETAIN: u64 = 256;

/// Sliding, rewindable window over a [`StreamSource`]'s output (live engine
/// or trace replay), bounded by an instruction budget.
#[derive(Debug)]
pub struct OracleStream<'p> {
    src: StreamSource<'p>,
    buf: VecDeque<DynInst>,
    /// Sequence number of `buf[0]`.
    base: u64,
    /// Next sequence number to be consumed.
    cursor: u64,
    /// Total instructions the stream will supply.
    limit: u64,
}

impl<'p> OracleStream<'p> {
    /// Wrap a live engine, capping the stream at `limit` instructions.
    pub fn new(engine: ExecutionEngine<'p>, limit: u64) -> OracleStream<'p> {
        Self::from_source(StreamSource::Live(engine), limit)
    }

    /// Wrap any committed-stream source, capping at `limit` instructions.
    /// For a replay source the caller must have validated that the capture
    /// holds at least `limit` instructions (`SimRequest` does).
    pub fn from_source(src: StreamSource<'p>, limit: u64) -> OracleStream<'p> {
        OracleStream {
            src,
            buf: VecDeque::with_capacity(512),
            base: 0,
            cursor: 0,
            limit,
        }
    }

    /// Total instructions pulled from the underlying source so far (the
    /// basis of the `replay:read` reconciliation counter).
    pub fn pulled(&self) -> u64 {
        self.base + self.buf.len() as u64
    }

    /// Is the underlying source a trace replay?
    pub fn is_replay(&self) -> bool {
        self.src.is_replay()
    }

    /// The next sequence number to be consumed.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Instructions remaining before the budget is exhausted.
    pub fn remaining(&self) -> u64 {
        self.limit.saturating_sub(self.cursor)
    }

    /// Has the budget been exhausted?
    pub fn exhausted(&self) -> bool {
        self.cursor >= self.limit
    }

    /// The instruction at absolute sequence `seq`, if within budget.
    ///
    /// # Panics
    /// Panics if `seq` has already been dropped from the rewind window.
    pub fn get(&mut self, seq: u64) -> Option<DynInst> {
        if seq >= self.limit {
            return None;
        }
        assert!(
            seq >= self.base,
            "sequence {seq} dropped from rewind window (base {})",
            self.base
        );
        while self.base + self.buf.len() as u64 <= seq {
            let d = self.src.next_inst();
            self.buf.push_back(d);
        }
        Some(self.buf[(seq - self.base) as usize])
    }

    /// Peek `ahead` instructions past the cursor (0 = next to consume).
    pub fn peek(&mut self, ahead: u64) -> Option<DynInst> {
        self.get(self.cursor + ahead)
    }

    /// Consume and return the instruction at the cursor.
    pub fn pop(&mut self) -> Option<DynInst> {
        let d = self.get(self.cursor)?;
        self.cursor += 1;
        // Trim the window, keeping RETAIN entries behind the cursor.
        while self.cursor.saturating_sub(self.base) > RETAIN {
            self.buf.pop_front();
            self.base += 1;
        }
        Some(d)
    }

    /// Rewind the cursor to `seq` (a trace abort re-fetching from the trace
    /// start).
    ///
    /// # Panics
    /// Panics if `seq` is ahead of the cursor or outside the rewind window.
    pub fn rewind(&mut self, seq: u64) {
        assert!(seq <= self.cursor, "rewind must move backwards");
        assert!(seq >= self.base, "rewind target outside retained window");
        self.cursor = seq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parrot_workloads::{generate_program, AppProfile, Suite};

    #[test]
    fn pop_peek_and_rewind() {
        let prog = generate_program(&AppProfile::suite_base(Suite::SpecInt));
        let mut o = OracleStream::new(ExecutionEngine::new(&prog), 10_000);
        let first = o.peek(0).unwrap();
        let tenth = o.peek(9).unwrap();
        assert_eq!(o.pop().unwrap(), first);
        for _ in 0..50 {
            o.pop();
        }
        o.rewind(9);
        assert_eq!(o.pop().unwrap(), tenth);
        assert_eq!(o.cursor(), 10);
    }

    #[test]
    fn respects_budget() {
        let prog = generate_program(&AppProfile::suite_base(Suite::SpecInt));
        let mut o = OracleStream::new(ExecutionEngine::new(&prog), 100);
        let mut n = 0;
        while o.pop().is_some() {
            n += 1;
        }
        assert_eq!(n, 100);
        assert!(o.exhausted());
        assert_eq!(o.remaining(), 0);
    }

    #[test]
    fn window_trims_but_keeps_retention() {
        let prog = generate_program(&AppProfile::suite_base(Suite::SpecInt));
        let mut o = OracleStream::new(ExecutionEngine::new(&prog), 100_000);
        for _ in 0..10_000 {
            o.pop();
        }
        // Recent history still available for rewind.
        o.rewind(10_000 - 64);
        assert!(o.pop().is_some());
    }

    #[test]
    #[should_panic]
    fn rewind_too_far_panics() {
        let prog = generate_program(&AppProfile::suite_base(Suite::SpecInt));
        let mut o = OracleStream::new(ExecutionEngine::new(&prog), 100_000);
        for _ in 0..5000 {
            o.pop();
        }
        o.rewind(0);
    }
}

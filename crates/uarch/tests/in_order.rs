//! Tests for the in-order issue mode (§5's alternative hot-core execution
//! model): strict age-order issue, correctness parity with OOO, and the
//! expected throughput ordering.

use parrot_energy::{EnergyAccount, EnergyConfig, EnergyModel};
use parrot_isa::{AluOp, Reg, Uop};
use parrot_uarch::cache::MemHierarchy;
use parrot_uarch::core::{CoreConfig, DispatchUop, OooCore};

struct Rig {
    core: OooCore,
    mem: MemHierarchy,
    model: EnergyModel,
    acct: EnergyAccount,
    now: u64,
}

impl Rig {
    fn new(cfg: CoreConfig) -> Rig {
        Rig {
            core: OooCore::new(cfg),
            mem: MemHierarchy::standard(),
            model: EnergyModel::new(&EnergyConfig::narrow()),
            acct: EnergyAccount::new(),
            now: 0,
        }
    }

    fn cycle(&mut self) -> u32 {
        self.core.writeback(self.now, &self.model, &mut self.acct);
        let (u, _) = self
            .core
            .commit(self.now, &mut self.mem, &self.model, &mut self.acct);
        self.core
            .issue(self.now, &mut self.mem, &self.model, &mut self.acct);
        self.now += 1;
        u
    }

    fn drain(&mut self, max: u64) -> u64 {
        let mut committed = 0u64;
        for _ in 0..max {
            committed += u64::from(self.cycle());
            if self.core.is_empty() {
                break;
            }
        }
        committed
    }
}

fn alu(dst: u8, src: u8) -> DispatchUop {
    DispatchUop::from_uop(
        &Uop::alu_imm(AluOp::Add, Reg::int(dst), Reg::int(src), 1),
        0,
        1,
    )
}

fn load(dst: u8) -> DispatchUop {
    DispatchUop::from_uop(&Uop::load(Reg::int(dst), Reg::int(14)), 0xdead_0000, 1)
}

#[test]
fn in_order_commits_everything() {
    let mut rig = Rig::new(CoreConfig::narrow().into_in_order());
    for i in 0..8 {
        rig.core.dispatch(
            &alu(i % 10, (i + 1) % 10),
            &rig.model.clone(),
            &mut rig.acct,
        );
    }
    assert_eq!(rig.drain(200), 8);
}

#[test]
fn in_order_stalls_behind_a_long_latency_head() {
    // OOO: independent ALUs slip past the cold-miss load. In-order: they
    // wait. Same work, more cycles.
    let run = |cfg: CoreConfig| {
        let mut rig = Rig::new(cfg);
        let model = rig.model.clone();
        rig.core.dispatch(&load(1), &model, &mut rig.acct); // cold miss
                                                            // Dependent consumer right behind the load.
        rig.core.dispatch(&alu(2, 1), &model, &mut rig.acct);
        // Independent work that OOO can overlap with the miss.
        for i in 3..10 {
            rig.core.dispatch(&alu(i, 13), &model, &mut rig.acct);
        }
        rig.drain(2_000);
        rig.now
    };
    let ooo = run(CoreConfig::narrow());
    let ino = run(CoreConfig::narrow().into_in_order());
    assert!(
        ino >= ooo,
        "in-order ({ino}) can never beat OOO ({ooo}) here"
    );
}

#[test]
fn in_order_issue_respects_age_order() {
    // A ready-but-younger uop must not issue before an older non-ready one.
    let mut rig = Rig::new(CoreConfig::narrow().into_in_order());
    let model = rig.model.clone();
    rig.core.dispatch(&load(1), &model, &mut rig.acct); // old, slow (cold miss)
    rig.core.dispatch(&alu(2, 1), &model, &mut rig.acct); // depends on load
    rig.core.dispatch(&alu(3, 13), &model, &mut rig.acct); // independent, younger
                                                           // After a handful of cycles, nothing besides the load may have issued.
    for _ in 0..5 {
        rig.cycle();
    }
    assert!(
        rig.core.stats().issued_uops <= 1,
        "only the head load may issue early in-order, got {}",
        rig.core.stats().issued_uops
    );
}

//! Randomized-property test (seeded in-tree PRNG; formerly proptest): the
//! rewindable oracle window behaves like a pure slice of the committed
//! stream under arbitrary interleavings of peek, pop and (bounded) rewind.

use parrot_uarch::oracle::OracleStream;
use parrot_workloads::rng::Xorshift64Star;
use parrot_workloads::{generate_program, AppProfile, DynInst, ExecutionEngine, Suite};

#[derive(Clone, Debug)]
enum Op {
    Pop,
    Peek(u8),
    Rewind(u8),
}

fn arb_op(r: &mut Xorshift64Star) -> Op {
    // Weighted 6:3:1 like the original proptest strategy.
    match r.u32_in(0, 10) {
        0..=5 => Op::Pop,
        6..=8 => Op::Peek(r.u8_in(0, 64)),
        _ => Op::Rewind(r.u8_in(0, 64)),
    }
}

#[test]
fn oracle_matches_reference_slice() {
    let mut r = Xorshift64Star::seed_from_u64(0x0_07ac1e);
    let prog = generate_program(&AppProfile::suite_base(Suite::SpecInt));
    for case in 0..64 {
        let ops: Vec<Op> = (0..r.usize_in(1, 300)).map(|_| arb_op(&mut r)).collect();
        let limit = r.u64_in(50, 400);
        let reference: Vec<DynInst> = ExecutionEngine::new(&prog).take(limit as usize).collect();
        let mut oracle = OracleStream::new(ExecutionEngine::new(&prog), limit);
        let mut cursor = 0u64;
        let mut min_rewind = 0u64;
        for o in &ops {
            match o {
                Op::Pop => {
                    let got = oracle.pop();
                    if cursor < limit {
                        assert_eq!(
                            got.expect("within limit"),
                            reference[cursor as usize],
                            "case {case}"
                        );
                        cursor += 1;
                        // The retained window guarantees 64-instruction rewinds.
                        min_rewind = cursor.saturating_sub(64);
                    } else {
                        assert!(got.is_none(), "case {case}");
                    }
                }
                Op::Peek(k) => {
                    let got = oracle.peek(u64::from(*k));
                    let want = reference.get((cursor + u64::from(*k)) as usize).copied();
                    assert_eq!(got, want, "case {case}");
                }
                Op::Rewind(k) => {
                    let target = cursor.saturating_sub(u64::from(*k)).max(min_rewind);
                    oracle.rewind(target);
                    cursor = target;
                }
            }
            assert_eq!(oracle.cursor(), cursor, "case {case}");
            assert_eq!(oracle.remaining(), limit - cursor, "case {case}");
        }
    }
}

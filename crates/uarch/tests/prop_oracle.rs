//! Property test: the rewindable oracle window behaves like a pure slice of
//! the committed stream under arbitrary interleavings of peek, pop and
//! (bounded) rewind.

use parrot_uarch::oracle::OracleStream;
use parrot_workloads::{generate_program, AppProfile, DynInst, ExecutionEngine, Suite};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Pop,
    Peek(u8),
    Rewind(u8),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => Just(Op::Pop),
        3 => (0u8..64).prop_map(Op::Peek),
        1 => (0u8..64).prop_map(Op::Rewind),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn oracle_matches_reference_slice(ops in prop::collection::vec(op(), 1..300), limit in 50u64..400) {
        let prog = generate_program(&AppProfile::suite_base(Suite::SpecInt));
        let reference: Vec<DynInst> = ExecutionEngine::new(&prog).take(limit as usize).collect();
        let mut oracle = OracleStream::new(ExecutionEngine::new(&prog), limit);
        let mut cursor = 0u64;
        let mut min_rewind = 0u64;
        for o in &ops {
            match o {
                Op::Pop => {
                    let got = oracle.pop();
                    if cursor < limit {
                        prop_assert_eq!(got.expect("within limit"), reference[cursor as usize]);
                        cursor += 1;
                        // The retained window guarantees 64-instruction rewinds.
                        min_rewind = cursor.saturating_sub(64);
                    } else {
                        prop_assert!(got.is_none());
                    }
                }
                Op::Peek(k) => {
                    let got = oracle.peek(u64::from(*k));
                    let want = reference.get((cursor + u64::from(*k)) as usize).copied();
                    prop_assert_eq!(got, want);
                }
                Op::Rewind(k) => {
                    let target = cursor.saturating_sub(u64::from(*k)).max(min_rewind);
                    oracle.rewind(target);
                    cursor = target;
                }
            }
            prop_assert_eq!(oracle.cursor(), cursor);
            prop_assert_eq!(oracle.remaining(), limit - cursor);
        }
    }
}

//! Dynamic behaviour models attached to static branches and memory
//! references. These are what make a synthetic program *behave* like its
//! benchmark class: branch predictability, loop regularity and memory
//! locality all derive from here.

use crate::rng::Xorshift64Star;

/// Index into [`crate::Program::behaviors`].
pub type BehaviorId = u32;

/// How a static branch (or indirect jump) resolves dynamically.
#[derive(Clone, Debug, PartialEq)]
pub enum BranchBehavior {
    /// Independently random with probability `p_taken` (data-dependent
    /// branch; captures weakly predictable control).
    Bias {
        /// Probability of resolving taken.
        p_taken: f64,
    },
    /// A loop back-edge: taken `trips - 1` times, then not-taken, where
    /// `trips` is redrawn around `trip_mean` on each loop entry. Low
    /// `trip_jitter` makes trip counts (and hence traces) highly regular.
    Loop {
        /// Mean trip count per loop entry.
        trip_mean: f64,
        /// Relative jitter applied when redrawing the trip count.
        trip_jitter: f64,
    },
    /// A deterministic repeating taken/not-taken pattern of `len` bits —
    /// perfectly predictable by a history-based predictor.
    Periodic {
        /// The direction bits, LSB first.
        pattern: u64,
        /// Pattern length in bits.
        len: u8,
    },
    /// For indirect jumps: select among N targets with the given cumulative
    /// distribution (typically Zipf-skewed).
    Select {
        /// Cumulative probability per target index.
        cdf: Vec<f64>,
    },
}

/// Per-branch runtime state evolved by [`BranchBehavior::resolve`].
#[derive(Clone, Copy, Debug, Default)]
pub struct BehaviorState {
    /// Loop: remaining body executions. Periodic: current phase.
    pub counter: u32,
}

/// Outcome of resolving one dynamic branch instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Conditional direction.
    Dir(bool),
    /// Indirect-jump target index.
    Select(usize),
}

impl BranchBehavior {
    /// Resolve one dynamic execution of this branch.
    pub fn resolve(&self, state: &mut BehaviorState, rng: &mut Xorshift64Star) -> Outcome {
        match self {
            BranchBehavior::Bias { p_taken } => Outcome::Dir(rng.chance(*p_taken)),
            BranchBehavior::Loop {
                trip_mean,
                trip_jitter,
            } => {
                if state.counter == 0 {
                    let u: f64 = rng.f64_in(-1.0, 1.0);
                    let trips = (trip_mean * (1.0 + trip_jitter * u)).round().max(1.0);
                    state.counter = trips as u32;
                }
                state.counter -= 1;
                Outcome::Dir(state.counter > 0)
            }
            BranchBehavior::Periodic { pattern, len } => {
                let len = (*len).max(1);
                let bit = (pattern >> (state.counter % u32::from(len))) & 1;
                state.counter = (state.counter + 1) % u32::from(len);
                Outcome::Dir(bit == 1)
            }
            BranchBehavior::Select { cdf } => {
                let u: f64 = rng.unit_f64();
                let idx = cdf
                    .partition_point(|&c| c < u)
                    .min(cdf.len().saturating_sub(1));
                Outcome::Select(idx)
            }
        }
    }
}

/// Build a Zipf cumulative distribution over `n` ranks with exponent
/// `theta` (higher = more skewed toward rank 0).
///
/// # Panics
/// Panics if `n == 0`.
pub fn zipf_cdf(n: usize, theta: f64) -> Vec<f64> {
    assert!(n > 0, "zipf over zero ranks");
    let weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(theta)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect()
}

/// Index into [`crate::Program::addr_streams`].
pub type StreamId = u16;

/// How one static memory reference generates effective addresses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AddrStreamSpec {
    /// Sequential walk: `base + (pos · stride) mod region`, 8-byte aligned.
    Stride {
        /// Region base address.
        base: u64,
        /// Bytes advanced per dynamic occurrence.
        stride: u32,
        /// Region size in bytes (the walk wraps).
        region: u32,
    },
    /// Uniformly random within `region` bytes above `base` (pointer-chasing
    /// style), 8-byte aligned.
    Random {
        /// Region base address.
        base: u64,
        /// Region size in bytes.
        region: u32,
    },
}

impl AddrStreamSpec {
    /// Produce the address for dynamic occurrence number `pos`.
    pub fn address(&self, pos: u64, rng: &mut Xorshift64Star) -> u64 {
        match self {
            AddrStreamSpec::Stride {
                base,
                stride,
                region,
            } => {
                let off = (pos.wrapping_mul(u64::from(*stride))) % u64::from((*region).max(8));
                base + (off & !7)
            }
            AddrStreamSpec::Random { base, region } => {
                let off = rng.u64_in(0, u64::from((*region).max(8)));
                base + (off & !7)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Xorshift64Star {
        Xorshift64Star::seed_from_u64(42)
    }

    #[test]
    fn bias_respects_probability() {
        let mut r = rng();
        let b = BranchBehavior::Bias { p_taken: 0.9 };
        let mut st = BehaviorState::default();
        let taken = (0..10_000)
            .filter(|_| b.resolve(&mut st, &mut r) == Outcome::Dir(true))
            .count();
        assert!((8700..9300).contains(&taken), "taken={taken}");
    }

    #[test]
    fn loop_behavior_runs_trips_then_exits() {
        let mut r = rng();
        let b = BranchBehavior::Loop {
            trip_mean: 5.0,
            trip_jitter: 0.0,
        };
        let mut st = BehaviorState::default();
        // 5 body executions: taken x4, then not taken.
        let outcomes: Vec<Outcome> = (0..5).map(|_| b.resolve(&mut st, &mut r)).collect();
        assert_eq!(
            outcomes,
            vec![
                Outcome::Dir(true),
                Outcome::Dir(true),
                Outcome::Dir(true),
                Outcome::Dir(true),
                Outcome::Dir(false)
            ]
        );
        // And the cycle repeats identically with zero jitter.
        let again: Vec<Outcome> = (0..5).map(|_| b.resolve(&mut st, &mut r)).collect();
        assert_eq!(outcomes, again);
    }

    #[test]
    fn periodic_repeats_pattern() {
        let mut r = rng();
        let b = BranchBehavior::Periodic {
            pattern: 0b101,
            len: 3,
        };
        let mut st = BehaviorState::default();
        let dirs: Vec<Outcome> = (0..6).map(|_| b.resolve(&mut st, &mut r)).collect();
        assert_eq!(
            dirs,
            vec![
                Outcome::Dir(true),
                Outcome::Dir(false),
                Outcome::Dir(true),
                Outcome::Dir(true),
                Outcome::Dir(false),
                Outcome::Dir(true)
            ]
        );
    }

    #[test]
    fn zipf_cdf_is_monotone_and_normalized() {
        let cdf = zipf_cdf(10, 1.2);
        assert_eq!(cdf.len(), 10);
        for w in cdf.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!((cdf[9] - 1.0).abs() < 1e-12);
        // Skew: rank 0 clearly dominates.
        assert!(cdf[0] > 0.25);
    }

    #[test]
    fn select_uses_cdf_skew() {
        let mut r = rng();
        let b = BranchBehavior::Select {
            cdf: zipf_cdf(8, 1.5),
        };
        let mut st = BehaviorState::default();
        let mut counts = [0usize; 8];
        for _ in 0..10_000 {
            if let Outcome::Select(i) = b.resolve(&mut st, &mut r) {
                counts[i] += 1;
            }
        }
        assert!(counts[0] > counts[7] * 4, "{counts:?}");
    }

    #[test]
    fn stride_stream_is_sequential_and_bounded() {
        let mut r = rng();
        let s = AddrStreamSpec::Stride {
            base: 0x1000,
            stride: 8,
            region: 64,
        };
        let addrs: Vec<u64> = (0..10).map(|p| s.address(p, &mut r)).collect();
        assert_eq!(addrs[0], 0x1000);
        assert_eq!(addrs[1], 0x1008);
        assert_eq!(addrs[8], 0x1000, "wraps at region");
        for a in &addrs {
            assert!(*a >= 0x1000 && *a < 0x1040);
            assert_eq!(a % 8, 0);
        }
    }

    #[test]
    fn random_stream_is_bounded_and_aligned() {
        let mut r = rng();
        let s = AddrStreamSpec::Random {
            base: 0x4000,
            region: 1024,
        };
        for p in 0..100 {
            let a = s.address(p, &mut r);
            assert!((0x4000..0x4400).contains(&a));
            assert_eq!(a % 8, 0);
        }
    }
}

//! The deterministic execution engine: walks a [`Program`]'s control-flow
//! graph, resolving branches via their behaviour models and memory
//! references via their address streams, and yields the committed
//! instruction stream that drives every (trace-driven) timing model.

use crate::behavior::{BehaviorState, Outcome};
use crate::program::{BlockId, Program, Terminator};
use crate::rng::Xorshift64Star;
use parrot_isa::{InstId, InstKind};

/// One committed dynamic macro-instruction: everything a trace-driven
/// pipeline model needs (identity, layout, resolved control flow, resolved
/// effective address).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DynInst {
    /// Static instruction id (index into [`Program::insts`]).
    pub inst: InstId,
    /// Instruction address.
    pub pc: u64,
    /// Encoded length in bytes.
    pub len: u8,
    /// For CTIs: resolved direction (`true` for unconditional transfers).
    pub taken: bool,
    /// Address of the next committed instruction (fall-through or target).
    pub next_pc: u64,
    /// Effective data address for memory instructions (0 otherwise).
    pub eff_addr: u64,
    /// Does this instruction access data memory (incl. call push/ret pop)?
    pub has_mem: bool,
}

/// Iterator over the committed instruction stream of a program.
///
/// The stream is infinite (the driver loops forever); callers bound it with
/// an instruction budget. Two engines constructed over the same program
/// yield identical streams.
#[derive(Clone, Debug)]
pub struct ExecutionEngine<'p> {
    prog: &'p Program,
    rng: Xorshift64Star,
    cur_block: BlockId,
    idx: u32,
    call_stack: Vec<BlockId>,
    beh_state: Vec<BehaviorState>,
    stream_pos: Vec<u64>,
    emitted: u64,
}

impl<'p> ExecutionEngine<'p> {
    /// Start execution at the driver function's entry.
    pub fn new(prog: &'p Program) -> ExecutionEngine<'p> {
        // The stream seed is distinct from the generation seed but fully
        // determined by the program shape, keeping runs reproducible.
        let seed = prog.code_bytes ^ 0x5eed_5eed_0000_0001;
        ExecutionEngine {
            prog,
            rng: Xorshift64Star::seed_from_u64(seed),
            cur_block: prog.funcs[0].entry,
            idx: 0,
            call_stack: Vec::with_capacity(64),
            beh_state: vec![BehaviorState::default(); prog.behaviors.len()],
            stream_pos: vec![0; prog.addr_streams.len()],
            emitted: 0,
        }
    }

    /// The program being executed.
    pub fn program(&self) -> &'p Program {
        self.prog
    }

    /// Committed instructions so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Current call depth.
    pub fn call_depth(&self) -> usize {
        self.call_stack.len()
    }

    fn effective_address(&mut self, inst_kind: &InstKind) -> (u64, bool) {
        if let Some(m) = inst_kind.mem_ref() {
            let sid = m.stream as usize;
            let pos = self.stream_pos[sid];
            self.stream_pos[sid] = pos + 1;
            let addr = self.prog.addr_streams[sid].address(pos, &mut self.rng);
            (addr, true)
        } else {
            match inst_kind {
                InstKind::Call => {
                    let depth = self.call_stack.len() as u64;
                    (self.prog.stack_base - 8 * (depth + 1), true)
                }
                InstKind::Return => {
                    let depth = self.call_stack.len() as u64;
                    (self.prog.stack_base - 8 * depth.max(1), true)
                }
                _ => (0, false),
            }
        }
    }
}

impl Iterator for ExecutionEngine<'_> {
    type Item = DynInst;

    fn next(&mut self) -> Option<DynInst> {
        let blk = &self.prog.blocks[self.cur_block as usize];
        let inst_id = blk.first_inst + self.idx;
        let inst = self.prog.inst(inst_id);
        let is_last = self.idx + 1 == blk.num_insts;
        let (eff_addr, has_mem) = self.effective_address(&inst.kind);

        let (taken, next_pc) = if !is_last {
            self.idx += 1;
            (false, inst.next_pc())
        } else {
            // Resolve the block exit.
            let (taken, next_block) = match &blk.term {
                Terminator::FallThrough { next } => (false, *next),
                Terminator::CondBranch {
                    taken,
                    fall,
                    behavior,
                } => {
                    let beh = &self.prog.behaviors[*behavior as usize];
                    match beh.resolve(&mut self.beh_state[*behavior as usize], &mut self.rng) {
                        Outcome::Dir(true) => (true, *taken),
                        Outcome::Dir(false) => (false, *fall),
                        Outcome::Select(_) => unreachable!("select on a conditional"),
                    }
                }
                Terminator::Jump { target } => (true, *target),
                Terminator::IndirectJump { targets, behavior } => {
                    let beh = &self.prog.behaviors[*behavior as usize];
                    match beh.resolve(&mut self.beh_state[*behavior as usize], &mut self.rng) {
                        Outcome::Select(i) => (true, targets[i.min(targets.len() - 1)]),
                        Outcome::Dir(_) => unreachable!("direction on a select"),
                    }
                }
                Terminator::Call { callee, ret_to } => {
                    self.call_stack.push(*ret_to);
                    (true, self.prog.funcs[*callee as usize].entry)
                }
                Terminator::Return => {
                    let ret = self.call_stack.pop().unwrap_or(self.prog.funcs[0].entry);
                    (true, ret)
                }
            };
            self.cur_block = next_block;
            self.idx = 0;
            // Taken or not, the next instruction is next_block's first pc
            // (a not-taken conditional falls through textually).
            (taken, self.prog.block_pc(next_block))
        };

        self.emitted += 1;
        Some(DynInst {
            inst: inst_id,
            pc: inst.addr,
            len: inst.len,
            taken,
            next_pc,
            eff_addr,
            has_mem,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genprog::generate_program;
    use crate::profile::{AppProfile, Suite};
    use std::collections::HashMap;

    fn program() -> Program {
        generate_program(&AppProfile::suite_base(Suite::SpecInt))
    }

    #[test]
    fn stream_is_infinite_and_deterministic() {
        let p = program();
        let a: Vec<DynInst> = ExecutionEngine::new(&p).take(5_000).collect();
        let b: Vec<DynInst> = ExecutionEngine::new(&p).take(5_000).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 5_000);
    }

    #[test]
    fn control_flow_is_consistent() {
        let p = program();
        let stream: Vec<DynInst> = ExecutionEngine::new(&p).take(20_000).collect();
        for w in stream.windows(2) {
            assert_eq!(
                w[0].next_pc, w[1].pc,
                "next_pc must chain to the following instruction"
            );
            if !w[0].taken {
                // Untaken/non-CTI: must be textually sequential.
                assert_eq!(w[0].pc + u64::from(w[0].len), w[1].pc);
            }
        }
    }

    #[test]
    fn calls_and_returns_balance() {
        let p = program();
        let mut eng = ExecutionEngine::new(&p);
        let mut calls = 0u64;
        let mut rets = 0u64;
        for d in (&mut eng).take(50_000) {
            match p.inst(d.inst).kind {
                InstKind::Call => calls += 1,
                InstKind::Return => rets += 1,
                _ => {}
            }
        }
        assert!(calls > 100, "calls={calls}");
        assert!(rets <= calls, "rets={rets} calls={calls}");
        assert!(calls - rets <= 64, "unbounded call depth");
        assert!(eng.call_depth() <= 64);
    }

    #[test]
    fn memory_instructions_have_addresses() {
        let p = program();
        for d in ExecutionEngine::new(&p).take(10_000) {
            let k = &p.inst(d.inst).kind;
            if k.mem_ref().is_some() || matches!(k, InstKind::Call | InstKind::Return) {
                assert!(d.has_mem);
                assert_ne!(d.eff_addr, 0);
            } else {
                assert!(!d.has_mem);
            }
        }
    }

    #[test]
    fn hot_code_dominates_execution() {
        // The Zipf driver must induce strong execution skew: the hottest 25%
        // of executed static instructions should cover well over half of the
        // dynamic stream (the paper's 90/10 premise).
        let p = generate_program(&AppProfile::suite_base(Suite::SpecFp));
        let mut counts: HashMap<InstId, u64> = HashMap::new();
        for d in ExecutionEngine::new(&p).take(200_000) {
            *counts.entry(d.inst).or_insert(0) += 1;
        }
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = freqs.iter().sum();
        let top_quarter: u64 = freqs.iter().take(freqs.len() / 4).sum();
        assert!(
            top_quarter as f64 > 0.75 * total as f64,
            "hot 25% covers only {:.1}%",
            100.0 * top_quarter as f64 / total as f64
        );
    }

    #[test]
    fn call_return_addresses_pair_up() {
        let p = program();
        let mut stack: Vec<u64> = Vec::new();
        for d in ExecutionEngine::new(&p).take(50_000) {
            match p.inst(d.inst).kind {
                InstKind::Call => stack.push(d.eff_addr),
                InstKind::Return => {
                    if let Some(push_addr) = stack.pop() {
                        assert_eq!(d.eff_addr, push_addr, "return pops where call pushed");
                    }
                }
                _ => {}
            }
        }
    }
}

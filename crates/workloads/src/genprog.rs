//! Synthetic program generation from an [`AppProfile`].
//!
//! A program is a dispatch **driver** (an infinite loop selecting workload
//! functions through a Zipf-skewed indirect jump — this produces the paper's
//! hot/cold 90/10 skew) plus `num_funcs` workload functions built from
//! structured regions: straight-line code, forward branches (biased or
//! periodic), loops (the trace unrolling/SIMDification substrate), call
//! sites and switches.

use crate::behavior::{zipf_cdf, AddrStreamSpec, BranchBehavior};
use crate::profile::AppProfile;
use crate::program::{
    BasicBlock, BlockId, FuncId, Function, Program, Terminator, DATA_BASE, STACK_BASE,
};
use crate::rng::Xorshift64Star;
use parrot_isa::{AluOp, Cond, FpOp, Inst, InstKind, MemRef, Operand, Reg};

/// Generate the synthetic program for an application profile.
///
/// The result is laid out (addresses and static targets resolved) and
/// validated; generation is fully deterministic in `profile.seed`.
pub fn generate_program(profile: &AppProfile) -> Program {
    let mut g = Gen {
        p: profile.clone(),
        rng: Xorshift64Star::seed_from_u64(profile.seed),
        cur_hot: false,
        insts: Vec::new(),
        blocks: Vec::new(),
        funcs: Vec::new(),
        behaviors: Vec::new(),
        streams: Vec::new(),
        stream_pool: Vec::new(),
        recent: Vec::new(),
        recent_fp: Vec::new(),
    };
    g.build_stream_pool();
    g.build();
    let mut prog = Program {
        insts: g.insts,
        blocks: g.blocks,
        funcs: g.funcs,
        behaviors: g.behaviors,
        addr_streams: g.streams,
        stack_base: STACK_BASE,
        code_bytes: 0,
    };
    prog.layout();
    debug_assert_eq!(prog.validate(), Ok(()));
    prog
}

/// Which field of a block's terminator should be patched to the next
/// region's entry.
enum ExitSlot {
    Fall,
    Taken,
    JumpTarget,
    CallRet,
}

struct Gen {
    p: AppProfile,
    rng: Xorshift64Star,
    /// Hotness of the function currently being generated (hot code is more
    /// regular: stronger branch bias, steadier loops, streaming memory).
    cur_hot: bool,
    insts: Vec<Inst>,
    blocks: Vec<BasicBlock>,
    funcs: Vec<Function>,
    behaviors: Vec<BranchBehavior>,
    streams: Vec<AddrStreamSpec>,
    /// Pooled stream ids: memory instructions share a bounded set of
    /// streams so the data working set matches `profile.data_kb` (real
    /// programs reuse the same arrays and heaps).
    stream_pool: Vec<u16>,
    /// Recently written integer registers (dependency locality).
    recent: Vec<Reg>,
    recent_fp: Vec<Reg>,
}

impl Gen {
    /// Create the shared pool of address streams: total footprint equals the
    /// profile's working set, split between striding and random streams.
    fn build_stream_pool(&mut self) {
        let pool_n = ((self.p.data_kb / 48).clamp(6, 24)) as usize;
        let region = ((u64::from(self.p.data_kb) * 1024) / pool_n as u64).max(1024) as u32;
        for i in 0..pool_n {
            let base = DATA_BASE + i as u64 * (u64::from(region) + 4096);
            let stride = self.rng.chance(self.p.stride_frac);
            let spec = if stride {
                let stride_bytes = *self.rng.pick(&[8u32, 8, 8, 16, 64]);
                AddrStreamSpec::Stride {
                    base,
                    stride: stride_bytes,
                    region,
                }
            } else {
                AddrStreamSpec::Random { base, region }
            };
            self.streams.push(spec);
            self.stream_pool.push(i as u16);
        }
    }

    fn build(&mut self) {
        let n = self.p.num_funcs.max(1);
        // Reserve function table: driver is func 0; bodies generated after
        // so call sites can reference any function id.
        self.funcs = vec![
            Function {
                entry: 0,
                num_blocks: 0
            };
            (n + 1) as usize
        ];
        self.gen_driver(n);
        for f in 1..=n {
            self.gen_function(f);
        }
    }

    // --- driver: switch-dispatch loop over workload functions ---
    fn gen_driver(&mut self, n: u32) {
        let first_block = self.blocks.len() as u32;
        // Block layout: [switch][case_1..case_n][tail].
        let switch_b = first_block;
        let case0 = first_block + 1;
        let tail = first_block + 1 + n;

        // Switch head: a little bookkeeping code, then the indirect jump.
        let beh = self.behaviors.len() as u32;
        self.behaviors.push(BranchBehavior::Select {
            cdf: zipf_cdf(n as usize, self.p.zipf_theta),
        });
        let first = self.body(2, false);
        let sel = self.push_inst(Inst::new(InstKind::IndirectJump { sel: Reg::int(11) }));
        self.blocks.push(BasicBlock {
            first_inst: first,
            num_insts: sel - first + 1,
            term: Terminator::IndirectJump {
                targets: (case0..case0 + n).collect(),
                behavior: beh,
            },
        });
        // Case blocks: call function i, return to tail.
        for f in 1..=n {
            let first = self.push_inst(Inst::new(InstKind::Call));
            self.blocks.push(BasicBlock {
                first_inst: first,
                num_insts: 1,
                term: Terminator::Call {
                    callee: f,
                    ret_to: tail,
                },
            });
        }
        // Tail: loop back to the switch forever.
        let first = self.body(1, false);
        let j = self.push_inst(Inst::new(InstKind::Jump));
        self.blocks.push(BasicBlock {
            first_inst: first,
            num_insts: j - first + 1,
            term: Terminator::Jump { target: switch_b },
        });
        self.funcs[0] = Function {
            entry: switch_b,
            num_blocks: self.blocks.len() as u32 - first_block,
        };
    }

    // --- workload function: a chain of regions ending in a return ---
    fn gen_function(&mut self, f: FuncId) {
        self.cur_hot = self.func_is_hot(f);
        let first_block = self.blocks.len() as u32;
        let regions = self.p.regions_per_func.max(2);
        let mut pending: Vec<(BlockId, ExitSlot)> = Vec::new();
        for _ in 0..regions {
            let entry = self.blocks.len() as u32;
            // Patch the previous region's exits to this region's entry.
            self.patch(&mut pending, entry);
            let mut exits = self.gen_region(f);
            pending.append(&mut exits);
        }
        // Return block.
        let ret_entry = self.blocks.len() as u32;
        self.patch(&mut pending, ret_entry);
        let first = self.body(1, false);
        let r = self.push_inst(Inst::new(InstKind::Return));
        self.blocks.push(BasicBlock {
            first_inst: first,
            num_insts: r - first + 1,
            term: Terminator::Return,
        });
        self.funcs[f as usize] = Function {
            entry: first_block,
            num_blocks: self.blocks.len() as u32 - first_block,
        };
    }

    fn patch(&mut self, pending: &mut Vec<(BlockId, ExitSlot)>, entry: BlockId) {
        for (b, slot) in pending.drain(..) {
            let term = &mut self.blocks[b as usize].term;
            match (slot, term) {
                (ExitSlot::Fall, Terminator::FallThrough { next }) => *next = entry,
                (ExitSlot::Fall, Terminator::CondBranch { fall, .. }) => *fall = entry,
                (ExitSlot::Taken, Terminator::CondBranch { taken, .. }) => *taken = entry,
                (ExitSlot::JumpTarget, Terminator::Jump { target }) => *target = entry,
                (ExitSlot::CallRet, Terminator::Call { ret_to, .. }) => *ret_to = entry,
                _ => unreachable!("exit slot does not match terminator shape"),
            }
        }
    }

    /// Is function `f` in the hot (frequently dispatched) portion of the
    /// Zipf callee distribution? Hot code is more regular and predictable —
    /// the paper's core premise (§2.1) — so its branches get stronger bias.
    fn func_is_hot(&self, f: FuncId) -> bool {
        f >= 1 && f <= (self.p.num_funcs / 4).max(2)
    }

    fn gen_region(&mut self, f: FuncId) -> Vec<(BlockId, ExitSlot)> {
        let r: f64 = self.rng.unit_f64();
        let p = &self.p;
        let hot = self.func_is_hot(f);
        if r < p.loop_frac {
            self.region_loop(hot)
        } else if r < p.loop_frac + p.call_frac && (f + 1) < self.funcs.len() as u32 {
            self.region_call(f)
        } else if r < p.loop_frac + p.call_frac + p.indirect_frac {
            self.region_switch()
        } else if r < p.loop_frac + p.call_frac + p.indirect_frac + 0.35 {
            self.region_if(hot)
        } else {
            self.region_plain()
        }
    }

    fn region_plain(&mut self) -> Vec<(BlockId, ExitSlot)> {
        let n = self.block_len();
        let first = self.body(n, false);
        let b = self.push_block(first, Terminator::FallThrough { next: u32::MAX });
        vec![(b, ExitSlot::Fall)]
    }

    /// A forward conditional: `cond ? skip : then-block`, both meeting at
    /// the next region.
    fn region_if(&mut self, hot: bool) -> Vec<(BlockId, ExitSlot)> {
        let beh = self.cond_behavior(hot);
        let n = self.block_len();
        let first = self.cond_body(n);
        let then_b_id = self.blocks.len() as u32 + 1;
        let cond_b = self.push_block(
            first,
            Terminator::CondBranch {
                taken: u32::MAX,
                fall: then_b_id,
                behavior: beh,
            },
        );
        let n2 = self.block_len();
        let first2 = self.body(n2, false);
        let then_b = self.push_block(first2, Terminator::FallThrough { next: u32::MAX });
        vec![(cond_b, ExitSlot::Taken), (then_b, ExitSlot::Fall)]
    }

    /// A counted loop: one or two body blocks with a backward conditional
    /// latch. Vectorizable loops get isomorphic bodies (SIMD fodder).
    fn region_loop(&mut self, hot: bool) -> Vec<(BlockId, ExitSlot)> {
        let vectorizable = self.rng.chance(self.p.simd_frac);
        let trip = (self.p.trip_mean * self.rng.f64_in(0.5, 1.6)).max(2.0);
        // Hot loops are steadier; in already-regular code (low profile
        // jitter — FP/multimedia kernels iterating over fixed-size data)
        // hot trip counts are *constant*, which is what lets a next-trace
        // predictor learn loop exits exactly.
        let jitter = if hot {
            if self.p.trip_jitter < 0.12 {
                0.0
            } else {
                self.p.trip_jitter * 0.4
            }
        } else {
            self.p.trip_jitter
        };
        let beh = self.behaviors.len() as u32;
        self.behaviors.push(BranchBehavior::Loop {
            trip_mean: trip,
            trip_jitter: jitter,
        });
        let head = self.blocks.len() as u32;
        let two_blocks = !vectorizable && self.rng.chance(0.3);
        if two_blocks {
            let n = self.block_len();
            let first = self.body(n, false);
            self.push_block(first, Terminator::FallThrough { next: head + 1 });
        }
        let n = self.block_len();
        let first = self.cond_body_vec(n, vectorizable);
        let latch = self.push_block(
            first,
            Terminator::CondBranch {
                taken: head,
                fall: u32::MAX,
                behavior: beh,
            },
        );
        vec![(latch, ExitSlot::Fall)]
    }

    fn region_call(&mut self, f: FuncId) -> Vec<(BlockId, ExitSlot)> {
        // Callee strictly deeper to keep the call graph acyclic.
        let lo = f + 1;
        let hi = self.funcs.len() as u32 - 1;
        let callee = if lo >= hi {
            hi
        } else {
            self.rng.u32_in(lo, hi + 1)
        };
        let n = self.block_len().min(4);
        let first = self.body(n, false);
        let c = self.push_inst(Inst::new(InstKind::Call));
        let b = self.blocks.len() as u32;
        self.blocks.push(BasicBlock {
            first_inst: first,
            num_insts: c - first + 1,
            term: Terminator::Call {
                callee,
                ret_to: u32::MAX,
            },
        });
        vec![(b, ExitSlot::CallRet)]
    }

    fn region_switch(&mut self) -> Vec<(BlockId, ExitSlot)> {
        let k = self.rng.u32_in(3, 7);
        let beh = self.behaviors.len() as u32;
        let theta = self.p.zipf_theta * 0.8;
        self.behaviors.push(BranchBehavior::Select {
            cdf: zipf_cdf(k as usize, theta),
        });
        let n = self.block_len().min(5);
        let first = self.body(n, false);
        let sel = self.push_inst(Inst::new(InstKind::IndirectJump { sel: Reg::int(10) }));
        let head = self.blocks.len() as u32;
        self.blocks.push(BasicBlock {
            first_inst: first,
            num_insts: sel - first + 1,
            term: Terminator::IndirectJump {
                targets: (head + 1..head + 1 + k).collect(),
                behavior: beh,
            },
        });
        let mut exits = Vec::with_capacity(k as usize);
        for _ in 0..k {
            let n = self.block_len();
            let first = self.body(n, false);
            let j = self.push_inst(Inst::new(InstKind::Jump));
            let b = self.blocks.len() as u32;
            self.blocks.push(BasicBlock {
                first_inst: first,
                num_insts: j - first + 1,
                term: Terminator::Jump { target: u32::MAX },
            });
            exits.push((b, ExitSlot::JumpTarget));
        }
        exits
    }

    // --- instruction filling ---

    fn block_len(&mut self) -> u32 {
        let (lo, hi) = self.p.block_len;
        self.rng.u32_in(lo, hi + 1)
    }

    /// Body of `n` instructions; returns the first instruction id.
    fn body(&mut self, n: u32, vectorizable: bool) -> u32 {
        let first = self.insts.len() as u32;
        if vectorizable {
            self.fill_vector_body(n);
        } else {
            for _ in 0..n {
                self.fill_one();
            }
        }
        if self.insts.len() as u32 == first {
            self.fill_one(); // never produce an empty body
        }
        first
    }

    /// Body ending with the `cmp` that feeds the region's conditional
    /// branch, then the branch itself.
    fn cond_body(&mut self, n: u32) -> u32 {
        self.cond_body_vec(n, false)
    }

    fn cond_body_vec(&mut self, n: u32, vectorizable: bool) -> u32 {
        let first = self.body(n.saturating_sub(2).max(1), vectorizable);
        let src = self.pick_src_int();
        let cmp_imm = self.rng.i64_in(0, 64);
        self.push_inst(Inst::new(InstKind::Cmp {
            src,
            rhs: Operand::Imm(cmp_imm),
        }));
        let cond = *self.rng.pick(&Cond::ALL);
        self.push_inst(Inst::new(InstKind::CondBranch { cond }));
        first
    }

    /// Isomorphic, independent groups: the SIMDification substrate. Four
    /// lanes of `load; op(coef); store` on distinct registers.
    fn fill_vector_body(&mut self, n: u32) {
        let fp = self.rng.chance((self.p.fp_frac * 2.5).min(1.0));
        let groups = (n / 3).clamp(2, 4);
        let coef = self.rng.i64_in(1, 16);
        for lane in 0..groups {
            let (dst, src) = if fp {
                (
                    Reg::fp((2 * lane % 16) as u8),
                    Reg::fp((2 * lane % 16 + 1) as u8),
                )
            } else {
                (Reg::int((lane % 7) as u8), Reg::int((lane % 7 + 7) as u8))
            };
            let load_mem = self.new_stream(true);
            let store_mem = self.new_stream(true);
            if fp {
                self.push_inst(Inst::new(InstKind::FpLoad {
                    dst: src,
                    mem: load_mem,
                }));
                self.push_inst(Inst::new(InstKind::FpAlu {
                    op: FpOp::Mul,
                    dst,
                    src1: src,
                    src2: src,
                }));
                self.push_inst(Inst::new(InstKind::FpStore {
                    src: dst,
                    mem: store_mem,
                }));
            } else {
                self.push_inst(Inst::new(InstKind::Load {
                    dst: src,
                    mem: load_mem,
                }));
                self.push_inst(Inst::new(InstKind::IntAlu {
                    op: AluOp::Add,
                    dst,
                    src,
                    rhs: Operand::Imm(coef),
                }));
                self.push_inst(Inst::new(InstKind::Store {
                    src: dst,
                    mem: store_mem,
                }));
            }
            self.note_write(dst);
        }
    }

    /// One instruction drawn from the profile's mix.
    fn fill_one(&mut self) {
        let r: f64 = self.rng.unit_f64();
        let p = self.p.clone();
        if r < p.const_frac {
            // Constant fodder: mov-imm followed (often) by a dependent op.
            let dst = self.pick_dst_int();
            let c = self.rng.i64_in(0, 256);
            self.push_inst(Inst::new(InstKind::IntAlu {
                op: AluOp::Mov,
                dst,
                src: dst,
                rhs: Operand::Imm(c),
            }));
            self.note_write(dst);
            if self.rng.chance(0.8) {
                let dst2 = self.pick_dst_int();
                let op = *self
                    .rng
                    .pick(&[AluOp::Add, AluOp::And, AluOp::Xor, AluOp::Shl]);
                let imm = self.rng.i64_in(0, 16);
                self.push_inst(Inst::new(InstKind::IntAlu {
                    op,
                    dst: dst2,
                    src: dst,
                    rhs: Operand::Imm(imm),
                }));
                self.note_write(dst2);
            }
            return;
        }
        if r < p.const_frac + p.dead_frac {
            // Dead fodder: a result overwritten before any use.
            let dst = self.pick_dst_int();
            let src = self.pick_src_int();
            let imm1 = self.rng.i64_in(1, 32);
            self.push_inst(Inst::new(InstKind::IntAlu {
                op: AluOp::Add,
                dst,
                src,
                rhs: Operand::Imm(imm1),
            }));
            let src2 = self.pick_src_int();
            let imm2 = self.rng.i64_in(1, 32);
            self.push_inst(Inst::new(InstKind::IntAlu {
                op: AluOp::Sub,
                dst,
                src: src2,
                rhs: Operand::Imm(imm2),
            }));
            self.note_write(dst);
            return;
        }
        let r2: f64 = self.rng.unit_f64();
        if r2 < p.mem_frac {
            self.fill_mem();
        } else if r2 < p.mem_frac + p.fp_frac {
            self.fill_fp();
        } else {
            self.fill_int_alu();
        }
    }

    fn fill_mem(&mut self) {
        let p_stride = if self.cur_hot {
            (self.p.stride_frac + 0.35).min(0.95)
        } else {
            self.p.stride_frac
        };
        let stride = self.rng.chance(p_stride);
        let mem = self.new_stream(stride);
        let cisc = self.rng.chance(self.p.cisc_frac);
        let choice: f64 = self.rng.unit_f64();
        if cisc {
            if choice < 0.6 {
                let dst = self.pick_dst_int();
                let src = self.pick_src_int();
                let op = *self
                    .rng
                    .pick(&[AluOp::Add, AluOp::And, AluOp::Or, AluOp::Xor]);
                self.push_inst(Inst::new(InstKind::LoadOp { op, dst, src, mem }));
                self.note_write(dst);
            } else {
                let src = self.pick_src_int();
                let op = *self.rng.pick(&[AluOp::Add, AluOp::Or, AluOp::Xor]);
                self.push_inst(Inst::new(InstKind::RmwStore { op, src, mem }));
            }
        } else if choice < 0.65 {
            let dst = self.pick_dst_int();
            self.push_inst(Inst::new(InstKind::Load { dst, mem }));
            self.note_write(dst);
        } else {
            let src = self.pick_src_int();
            self.push_inst(Inst::new(InstKind::Store { src, mem }));
        }
    }

    fn fill_fp(&mut self) {
        let r: f64 = self.rng.unit_f64();
        if r < 0.25 {
            let stride = self.rng.chance(self.p.stride_frac);
            let mem = self.new_stream(stride);
            let dst = self.pick_dst_fp();
            self.push_inst(Inst::new(InstKind::FpLoad { dst, mem }));
            self.note_write_fp(dst);
        } else {
            let dst = self.pick_dst_fp();
            let s1 = self.pick_src_fp();
            let s2 = self.pick_src_fp();
            let op = if r < 0.55 {
                FpOp::Add
            } else if r < 0.75 {
                FpOp::Sub
            } else if r < 0.93 {
                FpOp::Mul
            } else {
                FpOp::Div
            };
            self.push_inst(Inst::new(InstKind::FpAlu {
                op,
                dst,
                src1: s1,
                src2: s2,
            }));
            self.note_write_fp(dst);
        }
    }

    fn fill_int_alu(&mut self) {
        let dst = self.pick_dst_int();
        let src = self.pick_src_int();
        let r: f64 = self.rng.unit_f64();
        if r < self.p.mul_frac {
            let src2 = self.pick_src_int();
            if self.rng.chance(0.04) {
                self.push_inst(Inst::new(InstKind::IntDiv {
                    dst,
                    src1: src,
                    src2,
                }));
            } else {
                self.push_inst(Inst::new(InstKind::IntMul {
                    dst,
                    src1: src,
                    src2,
                }));
            }
        } else {
            let op = [
                AluOp::Add,
                AluOp::Add,
                AluOp::Sub,
                AluOp::And,
                AluOp::Or,
                AluOp::Xor,
                AluOp::Shl,
                AluOp::Shr,
                AluOp::Mov,
            ][self.rng.usize_in(0, 9)];
            let rhs = if self.rng.chance(0.45) {
                Operand::Imm(self.rng.i64_in(-64, 256))
            } else {
                Operand::Reg(self.pick_src_int())
            };
            self.push_inst(Inst::new(InstKind::IntAlu { op, dst, src, rhs }));
        }
        self.note_write(dst);
    }

    // --- helpers ---

    fn push_inst(&mut self, inst: Inst) -> u32 {
        self.insts.push(inst);
        self.insts.len() as u32 - 1
    }

    fn push_block(&mut self, first_inst: u32, term: Terminator) -> BlockId {
        let num_insts = self.insts.len() as u32 - first_inst;
        debug_assert!(num_insts > 0);
        self.blocks.push(BasicBlock {
            first_inst,
            num_insts,
            term,
        });
        self.blocks.len() as u32 - 1
    }

    fn cond_behavior(&mut self, hot: bool) -> u32 {
        let id = self.behaviors.len() as u32;
        let periodic_p = if hot {
            (self.p.periodic_frac + 0.2).min(0.95)
        } else {
            self.p.periodic_frac
        };
        if self.rng.chance(periodic_p) {
            let len = self.rng.u8_in(2, 9);
            let pattern: u64 = self.rng.u64_in(1, 1u64 << len);
            self.behaviors
                .push(BranchBehavior::Periodic { pattern, len });
        } else {
            let jitter: f64 = self.rng.f64_in(-0.12, 0.12);
            let base = if hot {
                // Hot-path branches strongly favour the common case.
                self.p.branch_bias.max(0.96)
            } else {
                self.p.branch_bias
            };
            let mut p = (base + jitter).clamp(0.55, 0.99);
            if self.rng.chance(0.5) {
                p = 1.0 - p; // some branches are mostly not-taken
            }
            self.behaviors.push(BranchBehavior::Bias { p_taken: p });
        }
        id
    }

    /// Reference one of the pooled streams. `prefer_stride` biases the pick
    /// toward striding streams (vectorizable bodies walk arrays).
    fn new_stream(&mut self, prefer_stride: bool) -> MemRef {
        let mut id = *self.rng.pick(&self.stream_pool);
        if prefer_stride {
            for _ in 0..3 {
                if matches!(self.streams[id as usize], AddrStreamSpec::Stride { .. }) {
                    break;
                }
                id = *self.rng.pick(&self.stream_pool);
            }
        }
        MemRef {
            base: self.pick_mem_base(),
            offset: self.rng.i32_in(-64, 512),
            stream: id,
        }
    }

    /// Address bases are mostly stable pointer registers (r12–r14), which
    /// the generator never writes — address generation must not serialize
    /// behind ALU chains, as in real compiled code.
    fn pick_mem_base(&mut self) -> Reg {
        if self.rng.chance(0.85) {
            Reg::int(12 + self.rng.u8_in(0, 3))
        } else {
            self.pick_src_int()
        }
    }

    fn pick_dst_int(&mut self) -> Reg {
        // r12-r14 are pointer registers and r15 the stack pointer; general
        // results go to r0-r11 so address bases stay stable.
        Reg::int(self.rng.u8_in(0, 12))
    }

    fn pick_src_int(&mut self) -> Reg {
        if !self.recent.is_empty() && self.rng.chance(0.25) {
            *self.rng.pick(&self.recent)
        } else {
            Reg::int(self.rng.u8_in(0, 15))
        }
    }

    fn pick_dst_fp(&mut self) -> Reg {
        Reg::fp(self.rng.u8_in(0, 16))
    }

    fn pick_src_fp(&mut self) -> Reg {
        if !self.recent_fp.is_empty() && self.rng.chance(0.25) {
            *self.rng.pick(&self.recent_fp)
        } else {
            Reg::fp(self.rng.u8_in(0, 16))
        }
    }

    fn note_write(&mut self, r: Reg) {
        self.recent.push(r);
        if self.recent.len() > 8 {
            self.recent.remove(0);
        }
    }

    fn note_write_fp(&mut self, r: Reg) {
        self.recent_fp.push(r);
        if self.recent_fp.len() > 8 {
            self.recent_fp.remove(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{all_apps, AppProfile, Suite};

    #[test]
    fn every_app_generates_a_valid_program() {
        for app in all_apps() {
            let p = generate_program(&app);
            assert_eq!(p.validate(), Ok(()), "{}", app.name);
            assert!(p.num_insts() > 200, "{}: too small", app.name);
            assert!(p.funcs.len() as u32 == app.num_funcs + 1);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let app = AppProfile::suite_base(Suite::SpecInt);
        let a = generate_program(&app);
        let b = generate_program(&app);
        assert_eq!(a.insts, b.insts);
        assert_eq!(a.blocks, b.blocks);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = AppProfile::suite_base(Suite::SpecInt);
        a.seed = 1;
        let mut b = AppProfile::suite_base(Suite::SpecInt);
        b.seed = 2;
        assert_ne!(generate_program(&a).insts, generate_program(&b).insts);
    }

    #[test]
    fn loops_produce_backward_branches() {
        let app = AppProfile::suite_base(Suite::SpecFp);
        let p = generate_program(&app);
        let backward = p
            .insts
            .iter()
            .filter(|i| i.kind.is_cond_branch() && i.target != 0 && i.target < i.addr)
            .count();
        assert!(backward > 5, "expected loop back-edges, found {backward}");
    }

    #[test]
    fn driver_dispatches_to_every_function() {
        let app = AppProfile::suite_base(Suite::Office);
        let p = generate_program(&app);
        let driver = &p.funcs[0];
        let switch = &p.blocks[driver.entry as usize];
        match &switch.term {
            Terminator::IndirectJump { targets, .. } => {
                assert_eq!(targets.len(), app.num_funcs as usize);
            }
            t => panic!("driver entry should be a switch, got {t:?}"),
        }
    }

    #[test]
    fn no_general_writes_to_stack_pointer() {
        for app in all_apps() {
            let p = generate_program(&app);
            for inst in &p.insts {
                let dst = match inst.kind {
                    InstKind::IntAlu { dst, .. }
                    | InstKind::IntMul { dst, .. }
                    | InstKind::IntDiv { dst, .. }
                    | InstKind::Load { dst, .. }
                    | InstKind::LoadOp { dst, .. } => Some(dst),
                    _ => None,
                };
                assert_ne!(dst, Some(Reg::SP), "{}: writes SP", app.name);
            }
        }
    }

    #[test]
    fn cond_branches_are_preceded_by_cmp() {
        let app = AppProfile::suite_base(Suite::SpecInt);
        let p = generate_program(&app);
        for b in &p.blocks {
            if let Terminator::CondBranch { .. } = b.term {
                let last = b.last_inst() as usize;
                assert!(matches!(p.insts[last].kind, InstKind::CondBranch { .. }));
                assert!(
                    matches!(p.insts[last - 1].kind, InstKind::Cmp { .. }),
                    "branch not fed by cmp"
                );
            }
        }
    }

    #[test]
    fn call_graph_is_acyclic() {
        for app in all_apps() {
            let p = generate_program(&app);
            for (fi, f) in p.funcs.iter().enumerate().skip(1) {
                for b in f.entry..f.entry + f.num_blocks {
                    if let Terminator::Call { callee, .. } = &p.blocks[b as usize].term {
                        assert!(
                            *callee as usize > fi,
                            "{}: func {fi} calls {callee} (possible recursion)",
                            app.name
                        );
                    }
                }
            }
        }
    }
}

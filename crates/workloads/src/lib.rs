//! # parrot-workloads
//!
//! The workload substrate of the PARROT reproduction.
//!
//! The paper drives its simulators with captured IA32 execution traces of 44
//! applications (SPEC 2000, SysMark 2000, multimedia and .NET workloads —
//! §3.4). Those traces are proprietary; this crate replaces them with
//! *synthetic applications*: statistically described programs
//! ([`AppProfile`]) compiled into real control-flow graphs of real
//! macro-instructions ([`Program`]) and executed deterministically
//! ([`ExecutionEngine`]) to produce the committed instruction stream
//! ([`DynInst`]) that trace-driven timing models consume.
//!
//! What is preserved from the originals is exactly what PARROT exploits:
//! hot/cold execution skew, per-suite branch predictability and loop
//! regularity, instruction mix, working-set behaviour, and the density of
//! optimizer-harvestable patterns (constants, dead results, vectorizable
//! loops).
//!
//! ```
//! use parrot_workloads::{app_by_name, Workload};
//!
//! let profile = app_by_name("gcc").expect("registered app");
//! let wl = Workload::build(&profile);
//! let first_1000: Vec<_> = wl.engine().take(1000).collect();
//! assert_eq!(first_1000.len(), 1000);
//! ```

#![warn(missing_docs)]

mod behavior;
mod engine;
mod genprog;
mod profile;
mod program;
mod stream;
pub mod tracefmt;

/// The in-tree deterministic PRNG (xorshift64*) used for program
/// generation and branch/address behavior. Re-exported from
/// `parrot-telemetry` so every crate draws from one implementation.
pub mod rng {
    pub use parrot_telemetry::rng::Xorshift64Star;
}

pub use behavior::{
    zipf_cdf, AddrStreamSpec, BehaviorId, BehaviorState, BranchBehavior, Outcome, StreamId,
};
pub use engine::{DynInst, ExecutionEngine};
pub use genprog::generate_program;
pub use profile::{all_apps, app_by_name, killer_apps, AppProfile, Suite};
pub use program::{
    BasicBlock, BlockId, DecodedProgram, FuncId, Function, Program, Terminator, CODE_BASE,
    DATA_BASE, STACK_BASE,
};
pub use stream::StreamSource;

/// A ready-to-simulate application: profile, generated program and
/// pre-decoded uops.
#[derive(Clone, Debug)]
pub struct Workload {
    /// The statistical profile the program was generated from.
    pub profile: AppProfile,
    /// The generated static program.
    pub program: Program,
    /// Pre-decoded uops for every static instruction.
    pub decoded: DecodedProgram,
}

impl Workload {
    /// Generate program and decode table for `profile`.
    pub fn build(profile: &AppProfile) -> Workload {
        let program = generate_program(profile);
        let decoded = program.decode_all();
        Workload {
            profile: profile.clone(),
            program,
            decoded,
        }
    }

    /// A fresh execution engine positioned at the program entry. Engines
    /// over the same workload yield identical streams.
    pub fn engine(&self) -> ExecutionEngine<'_> {
        ExecutionEngine::new(&self.program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_builds_and_runs() {
        let profile = AppProfile::suite_base(Suite::Multimedia);
        let wl = Workload::build(&profile);
        assert!(wl.decoded.total_uops() >= wl.program.num_insts());
        let n: usize = wl.engine().take(100).count();
        assert_eq!(n, 100);
    }

    #[test]
    fn engines_restart_identically() {
        let wl = Workload::build(&app_by_name("swim").unwrap());
        let a: Vec<_> = wl.engine().take(1000).collect();
        let b: Vec<_> = wl.engine().take(1000).collect();
        assert_eq!(a, b);
    }
}

use std::fmt;

/// Benchmark suite classification, matching the paper's §3.4 grouping.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Suite {
    /// SPEC CPU2000 integer benchmarks.
    SpecInt,
    /// SPEC CPU2000 floating-point benchmarks.
    SpecFp,
    /// SysMark 2000 office-productivity workloads.
    Office,
    /// Multimedia kernels (codecs, imaging).
    Multimedia,
    /// .NET managed-runtime workloads.
    DotNet,
}

impl Suite {
    /// All suites in the paper's reporting order.
    pub const ALL: [Suite; 5] = [
        Suite::SpecInt,
        Suite::SpecFp,
        Suite::Office,
        Suite::Multimedia,
        Suite::DotNet,
    ];

    /// Display label used in figure output.
    pub fn label(self) -> &'static str {
        match self {
            Suite::SpecInt => "SpecInt",
            Suite::SpecFp => "SpecFP",
            Suite::Office => "Office",
            Suite::Multimedia => "Multimedia",
            Suite::DotNet => "DotNet",
        }
    }
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Statistical description of one application, from which a synthetic
/// program and its dynamic behaviour are generated.
///
/// These parameters capture what the paper's IA32 traces supply: hot/cold
/// skew, control-flow regularity, instruction mix, memory behaviour, and the
/// density of optimizer-harvestable patterns. See DESIGN.md §2 for the
/// substitution argument.
#[derive(Clone, Debug, PartialEq)]
pub struct AppProfile {
    /// Application name (paper benchmark it stands in for).
    pub name: &'static str,
    /// Suite the application belongs to.
    pub suite: Suite,
    /// Master seed: program shape and dynamic behaviour are functions of it.
    pub seed: u64,

    // --- static code shape ---
    /// Number of workload functions (besides the dispatch driver).
    pub num_funcs: u32,
    /// Regions (straight-line / branchy / loop structures) per function.
    pub regions_per_func: u32,
    /// Basic-block length bounds, in macro-instructions.
    pub block_len: (u32, u32),

    // --- instruction mix ---
    /// Fraction of body instructions that are floating point.
    pub fp_frac: f64,
    /// Fraction of body instructions that reference memory.
    pub mem_frac: f64,
    /// Fraction of ALU operations that are multiplies (a tenth divide).
    pub mul_frac: f64,
    /// Fraction of memory operations using CISC load-op / RMW forms.
    pub cisc_frac: f64,

    // --- control flow ---
    /// Fraction of regions that are loops.
    pub loop_frac: f64,
    /// Mean loop trip count.
    pub trip_mean: f64,
    /// Trip count jitter (0 = perfectly regular loops).
    pub trip_jitter: f64,
    /// Mean taken-bias magnitude of data-dependent branches (0.5–1.0).
    pub branch_bias: f64,
    /// Fraction of conditional branches with periodic (history-predictable)
    /// patterns rather than random bias.
    pub periodic_frac: f64,
    /// Fraction of regions ending in an indirect jump (switch).
    pub indirect_frac: f64,
    /// Fraction of regions that are call sites.
    pub call_frac: f64,
    /// Zipf exponent for dynamic callee selection: higher = more skewed
    /// (hotter hot code, higher trace-cache coverage).
    pub zipf_theta: f64,

    // --- memory behaviour ---
    /// Fraction of address streams that stride sequentially (vs. random
    /// within the working set).
    pub stride_frac: f64,
    /// Data working-set size in KiB.
    pub data_kb: u32,

    // --- optimizer-harvestable structure ---
    /// Density of constant-feeding instruction patterns (const-prop fodder).
    pub const_frac: f64,
    /// Density of soon-overwritten results (dead-code fodder).
    pub dead_frac: f64,
    /// Fraction of loops whose bodies are isomorphic/independent enough to
    /// SIMDify once unrolled.
    pub simd_frac: f64,
}

impl AppProfile {
    /// Per-suite base profile; named applications perturb these.
    pub fn suite_base(suite: Suite) -> AppProfile {
        match suite {
            // Irregular, control-intensive integer code: short blocks, short
            // loops, weakly biased branches, flat call distribution.
            Suite::SpecInt => AppProfile {
                name: "specint-base",
                suite,
                seed: 0,
                num_funcs: 24,
                regions_per_func: 10,
                block_len: (3, 9),
                fp_frac: 0.01,
                mem_frac: 0.32,
                mul_frac: 0.04,
                cisc_frac: 0.30,
                loop_frac: 0.30,
                trip_mean: 9.0,
                trip_jitter: 0.45,
                branch_bias: 0.93,
                periodic_frac: 0.40,
                indirect_frac: 0.08,
                call_frac: 0.18,
                zipf_theta: 1.0,
                stride_frac: 0.35,
                data_kb: 320,
                const_frac: 0.075,
                dead_frac: 0.075,
                simd_frac: 0.08,
            },
            // Regular scientific loops: long, predictable trip counts,
            // strongly skewed hot code, striding arrays, SIMD-friendly.
            Suite::SpecFp => AppProfile {
                name: "specfp-base",
                suite,
                seed: 0,
                num_funcs: 14,
                regions_per_func: 8,
                block_len: (6, 14),
                fp_frac: 0.34,
                mem_frac: 0.34,
                mul_frac: 0.05,
                cisc_frac: 0.22,
                loop_frac: 0.52,
                trip_mean: 64.0,
                trip_jitter: 0.08,
                branch_bias: 0.975,
                periodic_frac: 0.55,
                indirect_frac: 0.015,
                call_frac: 0.10,
                zipf_theta: 1.45,
                stride_frac: 0.85,
                data_kb: 1024,
                const_frac: 0.090,
                dead_frac: 0.068,
                simd_frac: 0.45,
            },
            // Interactive productivity code: large flat footprint, moderate
            // predictability, pointer-heavy data.
            Suite::Office => AppProfile {
                name: "office-base",
                suite,
                seed: 0,
                num_funcs: 32,
                regions_per_func: 11,
                block_len: (4, 10),
                fp_frac: 0.02,
                mem_frac: 0.36,
                mul_frac: 0.03,
                cisc_frac: 0.34,
                loop_frac: 0.34,
                trip_mean: 14.0,
                trip_jitter: 0.45,
                branch_bias: 0.945,
                periodic_frac: 0.40,
                indirect_frac: 0.06,
                call_frac: 0.20,
                zipf_theta: 1.10,
                stride_frac: 0.45,
                data_kb: 768,
                const_frac: 0.083,
                dead_frac: 0.083,
                simd_frac: 0.12,
            },
            // Kernels over media data: execution-bound unrollable loops,
            // dense SIMDifiable patterns, small streaming working sets.
            Suite::Multimedia => AppProfile {
                name: "multimedia-base",
                suite,
                seed: 0,
                num_funcs: 12,
                regions_per_func: 8,
                block_len: (6, 16),
                fp_frac: 0.12,
                mem_frac: 0.30,
                mul_frac: 0.10,
                cisc_frac: 0.26,
                loop_frac: 0.48,
                trip_mean: 32.0,
                trip_jitter: 0.15,
                branch_bias: 0.95,
                periodic_frac: 0.50,
                indirect_frac: 0.03,
                call_frac: 0.12,
                zipf_theta: 1.30,
                stride_frac: 0.75,
                data_kb: 256,
                const_frac: 0.105,
                dead_frac: 0.075,
                simd_frac: 0.55,
            },
            // JIT-style managed code: call-dense, moderate loops, many
            // constant-feeding and dead-store patterns (unoptimized codegen).
            Suite::DotNet => AppProfile {
                name: "dotnet-base",
                suite,
                seed: 0,
                num_funcs: 28,
                regions_per_func: 9,
                block_len: (4, 11),
                fp_frac: 0.08,
                mem_frac: 0.33,
                mul_frac: 0.05,
                cisc_frac: 0.28,
                loop_frac: 0.36,
                trip_mean: 24.0,
                trip_jitter: 0.30,
                branch_bias: 0.95,
                periodic_frac: 0.42,
                indirect_frac: 0.07,
                call_frac: 0.26,
                zipf_theta: 1.20,
                stride_frac: 0.55,
                data_kb: 512,
                const_frac: 0.135,
                dead_frac: 0.120,
                simd_frac: 0.20,
            },
        }
    }

    fn named(mut self, name: &'static str, seed: u64) -> AppProfile {
        self.name = name;
        self.seed = seed;
        self
    }
}

fn fnv(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

macro_rules! app {
    ($vec:ident, $suite:expr, $name:literal) => {
        $vec.push(AppProfile::suite_base($suite).named($name, fnv($name)));
    };
    ($vec:ident, $suite:expr, $name:literal, |$p:ident| $tweaks:block) => {{
        let mut $p = AppProfile::suite_base($suite).named($name, fnv($name));
        $tweaks
        $vec.push($p);
    }};
}

/// The full application registry: stand-ins for the paper's 44 traces,
/// grouped into the same five suites (§3.4).
pub fn all_apps() -> Vec<AppProfile> {
    let mut v = Vec::new();

    // --- SpecInt 2000 ---
    app!(v, Suite::SpecInt, "bzip", |p| {
        p.stride_frac = 0.55;
        p.loop_frac = 0.38;
    });
    app!(v, Suite::SpecInt, "crafty", |p| {
        p.branch_bias = 0.86;
        p.mul_frac = 0.06;
    });
    app!(v, Suite::SpecInt, "eon", |p| {
        p.fp_frac = 0.10;
        p.call_frac = 0.24;
    });
    app!(v, Suite::SpecInt, "gap", |p| {
        p.indirect_frac = 0.12;
    });
    app!(v, Suite::SpecInt, "gcc", |p| {
        p.num_funcs = 40;
        p.zipf_theta = 0.8;
        p.branch_bias = 0.87;
        p.indirect_frac = 0.11;
    });
    app!(v, Suite::SpecInt, "gzip", |p| {
        p.stride_frac = 0.5;
        p.trip_mean = 10.0;
    });
    app!(v, Suite::SpecInt, "parser", |p| {
        p.call_frac = 0.26;
        p.branch_bias = 0.87;
    });
    app!(v, Suite::SpecInt, "perlbench", |p| {
        // A "killer app": very call/dispatch-heavy with a skewed interpreter
        // loop that traces capture extremely well.
        p.call_frac = 0.30;
        p.indirect_frac = 0.14;
        p.zipf_theta = 1.6;
        p.trip_mean = 18.0;
        p.const_frac = 0.10;
        p.dead_frac = 0.09;
    });
    app!(v, Suite::SpecInt, "twolf", |p| {
        p.mem_frac = 0.38;
        p.stride_frac = 0.25;
    });
    app!(v, Suite::SpecInt, "vortex", |p| {
        p.call_frac = 0.28;
        p.data_kb = 640;
    });
    app!(v, Suite::SpecInt, "vpr", |p| {
        p.fp_frac = 0.06;
        p.branch_bias = 0.91;
    });

    // --- SpecFP 2000 ---
    app!(v, Suite::SpecFp, "ammp", |p| {
        p.mem_frac = 0.38;
        p.stride_frac = 0.7;
    });
    app!(v, Suite::SpecFp, "apsi", |p| {
        p.trip_mean = 48.0;
    });
    app!(v, Suite::SpecFp, "art", |p| {
        p.data_kb = 2048;
        p.stride_frac = 0.9;
        p.simd_frac = 0.5;
    });
    app!(v, Suite::SpecFp, "equake", |p| {
        p.mem_frac = 0.40;
        p.trip_mean = 40.0;
    });
    app!(v, Suite::SpecFp, "facerec", |p| {
        p.simd_frac = 0.5;
        p.trip_mean = 56.0;
    });
    app!(v, Suite::SpecFp, "fma3d", |p| {
        p.call_frac = 0.14;
        p.trip_jitter = 0.15;
    });
    app!(v, Suite::SpecFp, "lucas", |p| {
        p.fp_frac = 0.42;
        p.trip_mean = 96.0;
    });
    app!(v, Suite::SpecFp, "mesa", |p| {
        p.fp_frac = 0.22;
        p.simd_frac = 0.4;
        p.branch_bias = 0.94;
    });
    app!(v, Suite::SpecFp, "sixtrack", |p| {
        p.trip_mean = 72.0;
        p.mul_frac = 0.08;
    });
    app!(v, Suite::SpecFp, "swim", |p| {
        // The paper's P_MAX application: maximally regular streaming FP.
        p.fp_frac = 0.40;
        p.trip_mean = 128.0;
        p.trip_jitter = 0.04;
        p.zipf_theta = 1.7;
        p.stride_frac = 0.95;
        p.simd_frac = 0.6;
        p.data_kb = 4096;
    });
    app!(v, Suite::SpecFp, "wupwise", |p| {
        // A "killer app": unrollable FP kernels with dense SIMD patterns.
        p.fp_frac = 0.38;
        p.trip_mean = 80.0;
        p.simd_frac = 0.65;
        p.const_frac = 0.10;
        p.zipf_theta = 1.6;
    });

    // --- Office / Windows (SysMark 2000) ---
    app!(v, Suite::Office, "excel", |p| {
        p.loop_frac = 0.4;
        p.fp_frac = 0.05;
    });
    app!(v, Suite::Office, "office", |p| {
        p.num_funcs = 40;
    });
    app!(v, Suite::Office, "powerpoint", |p| {
        p.mem_frac = 0.38;
    });
    app!(v, Suite::Office, "virusscan", |p| {
        p.stride_frac = 0.65;
        p.trip_mean = 24.0;
    });
    app!(v, Suite::Office, "winzip", |p| {
        p.stride_frac = 0.6;
        p.loop_frac = 0.42;
    });
    app!(v, Suite::Office, "word", |p| {
        p.call_frac = 0.24;
    });

    // --- Multimedia ---
    app!(v, Suite::Multimedia, "flash", |p| {
        // The third "killer app": dispatch loop over media kernels; heavy
        // unrolling + SIMDification payoff.
        p.simd_frac = 0.7;
        p.zipf_theta = 1.7;
        p.trip_mean = 48.0;
        p.const_frac = 0.11;
        p.dead_frac = 0.08;
    });
    app!(v, Suite::Multimedia, "photoshop", |p| {
        p.data_kb = 1024;
        p.stride_frac = 0.85;
    });
    app!(v, Suite::Multimedia, "dragon", |p| {
        p.fp_frac = 0.18;
    });
    app!(v, Suite::Multimedia, "lightwave", |p| {
        p.fp_frac = 0.24;
        p.mul_frac = 0.12;
    });
    app!(v, Suite::Multimedia, "quake3", |p| {
        p.fp_frac = 0.20;
        p.call_frac = 0.16;
    });
    app!(v, Suite::Multimedia, "3dsmax-light", |p| {
        p.fp_frac = 0.22;
    });
    app!(v, Suite::Multimedia, "3dsmax-wheel", |p| {
        p.mul_frac = 0.14;
    });
    app!(v, Suite::Multimedia, "3dsmax-raster", |p| {
        p.stride_frac = 0.85;
    });
    app!(v, Suite::Multimedia, "3dsmax-geom", |p| {
        p.fp_frac = 0.26;
    });
    app!(v, Suite::Multimedia, "flask-mpeg4-a", |p| {
        p.simd_frac = 0.65;
        p.trip_mean = 40.0;
    });
    app!(v, Suite::Multimedia, "flask-mpeg4-b", |p| {
        p.simd_frac = 0.6;
        p.data_kb = 384;
    });

    // --- DotNet ---
    app!(v, Suite::DotNet, "dotnet-image", |p| {
        p.stride_frac = 0.7;
        p.simd_frac = 0.3;
    });
    app!(v, Suite::DotNet, "dotnet-num1", |p| {
        p.fp_frac = 0.18;
        p.loop_frac = 0.44;
    });
    app!(v, Suite::DotNet, "dotnet-num2", |p| {
        p.fp_frac = 0.14;
        p.trip_mean = 36.0;
    });
    app!(v, Suite::DotNet, "dotnet-phong1", |p| {
        p.fp_frac = 0.22;
        p.mul_frac = 0.10;
    });
    app!(v, Suite::DotNet, "dotnet-phong2", |p| {
        p.fp_frac = 0.20;
        p.simd_frac = 0.3;
    });

    v
}

/// Look up an application profile by name.
pub fn app_by_name(name: &str) -> Option<AppProfile> {
    all_apps().into_iter().find(|a| a.name == name)
}

/// The three applications the paper singles out as highest-improvement
/// "killer applications" (flash, wupwise, perlbench).
pub fn killer_apps() -> [&'static str; 3] {
    ["flash", "wupwise", "perlbench"]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_suites() {
        let apps = all_apps();
        for suite in Suite::ALL {
            assert!(apps.iter().any(|a| a.suite == suite), "{suite} missing");
        }
        assert!(
            apps.len() >= 35,
            "expected a broad registry, got {}",
            apps.len()
        );
    }

    #[test]
    fn names_and_seeds_are_unique() {
        let apps = all_apps();
        let mut names: Vec<_> = apps.iter().map(|a| a.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), apps.len());
        let mut seeds: Vec<_> = apps.iter().map(|a| a.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), apps.len());
    }

    #[test]
    fn killer_apps_exist() {
        for k in killer_apps() {
            assert!(app_by_name(k).is_some(), "{k}");
        }
    }

    #[test]
    fn suite_contrast_matches_paper() {
        let int = AppProfile::suite_base(Suite::SpecInt);
        let fp = AppProfile::suite_base(Suite::SpecFp);
        // SpecFP must be more regular/skewed than SpecInt in every dimension
        // the paper's coverage and predictability results depend on.
        assert!(fp.zipf_theta > int.zipf_theta);
        assert!(fp.branch_bias > int.branch_bias);
        assert!(fp.trip_mean > int.trip_mean);
        assert!(fp.trip_jitter < int.trip_jitter);
        assert!(fp.stride_frac > int.stride_frac);
    }

    #[test]
    fn probabilities_are_sane() {
        for a in all_apps() {
            for (label, p) in [
                ("fp", a.fp_frac),
                ("mem", a.mem_frac),
                ("mul", a.mul_frac),
                ("cisc", a.cisc_frac),
                ("loop", a.loop_frac),
                ("periodic", a.periodic_frac),
                ("indirect", a.indirect_frac),
                ("call", a.call_frac),
                ("stride", a.stride_frac),
                ("const", a.const_frac),
                ("dead", a.dead_frac),
                ("simd", a.simd_frac),
            ] {
                assert!((0.0..=1.0).contains(&p), "{}: {label}={p}", a.name);
            }
            assert!((0.5..=1.0).contains(&a.branch_bias), "{}", a.name);
            assert!(a.block_len.0 >= 1 && a.block_len.1 >= a.block_len.0);
            assert!(a.fp_frac + a.mem_frac < 0.95, "{}: mix overflow", a.name);
        }
    }
}

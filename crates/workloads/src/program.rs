//! Static program representation: functions of basic blocks of
//! macro-instructions, plus the behaviour tables that drive dynamic
//! execution.

use crate::behavior::{AddrStreamSpec, BehaviorId, BranchBehavior};
use parrot_isa::{decode, Inst, InstId, Uop};

/// Index into [`Program::blocks`].
pub type BlockId = u32;
/// Index into [`Program::funcs`].
pub type FuncId = u32;

/// How control leaves a basic block. For every variant except
/// [`Terminator::FallThrough`], the block's final instruction is the
/// corresponding control-transfer instruction.
#[derive(Clone, Debug, PartialEq)]
pub enum Terminator {
    /// No CTI; control continues at `next`.
    FallThrough {
        /// Successor block.
        next: BlockId,
    },
    /// Conditional branch: `taken` vs. `fall`, resolved by `behavior`.
    CondBranch {
        /// Successor when the branch is taken.
        taken: BlockId,
        /// Fall-through successor.
        fall: BlockId,
        /// Dynamic direction model.
        behavior: BehaviorId,
    },
    /// Unconditional direct jump.
    Jump {
        /// Jump target block.
        target: BlockId,
    },
    /// Indirect jump among `targets`, selected by `behavior`.
    IndirectJump {
        /// Candidate target blocks.
        targets: Vec<BlockId>,
        /// Dynamic target-selection model.
        behavior: BehaviorId,
    },
    /// Call `callee`; execution resumes at `ret_to` after the callee
    /// returns.
    Call {
        /// Function whose entry block receives control.
        callee: FuncId,
        /// Block execution resumes at after the callee returns.
        ret_to: BlockId,
    },
    /// Return to the caller.
    Return,
}

/// A basic block: a contiguous run of instructions in [`Program::insts`].
#[derive(Clone, Debug, PartialEq)]
pub struct BasicBlock {
    /// First instruction index.
    pub first_inst: u32,
    /// Number of instructions (≥ 1).
    pub num_insts: u32,
    /// Control-flow exit.
    pub term: Terminator,
}

impl BasicBlock {
    /// Instruction ids of this block, in order.
    pub fn inst_ids(&self) -> std::ops::Range<u32> {
        self.first_inst..self.first_inst + self.num_insts
    }

    /// Id of the final (terminator) instruction.
    pub fn last_inst(&self) -> InstId {
        self.first_inst + self.num_insts - 1
    }
}

/// A function: an entry block plus bookkeeping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Function {
    /// Entry basic block.
    pub entry: BlockId,
    /// Number of blocks belonging to this function (contiguous from entry).
    pub num_blocks: u32,
}

/// A complete synthetic program: code, control structure and behaviour
/// tables. Produced by [`crate::generate_program`]; executed by
/// [`crate::ExecutionEngine`].
#[derive(Clone, Debug)]
pub struct Program {
    /// Flat instruction table.
    pub insts: Vec<Inst>,
    /// Flat basic-block table (function blocks are contiguous).
    pub blocks: Vec<BasicBlock>,
    /// Function table; `funcs[0]` is the dispatch driver.
    pub funcs: Vec<Function>,
    /// Branch behaviour table referenced by terminators.
    pub behaviors: Vec<BranchBehavior>,
    /// Address stream table referenced by memory instructions.
    pub addr_streams: Vec<AddrStreamSpec>,
    /// Base virtual address of the stack region (grows down).
    pub stack_base: u64,
    /// Total laid-out code bytes.
    pub code_bytes: u64,
}

/// Base virtual address of the code segment.
pub const CODE_BASE: u64 = 0x0040_0000;
/// Base virtual address of the data segment (address streams live above).
pub const DATA_BASE: u64 = 0x1000_0000;
/// Base virtual address of the stack (grows down from here).
pub const STACK_BASE: u64 = 0x7fff_0000;

impl Program {
    /// Assign code addresses to every instruction and resolve static branch
    /// targets. Must be called once after construction (the generator does).
    pub fn layout(&mut self) {
        let mut pc = CODE_BASE;
        // Addresses: blocks in table order (functions contiguous).
        for b in &self.blocks {
            for id in b.inst_ids() {
                let inst = &mut self.insts[id as usize];
                inst.addr = pc;
                pc += u64::from(inst.len);
            }
        }
        self.code_bytes = pc - CODE_BASE;
        // Static targets on terminator CTIs.
        for bi in 0..self.blocks.len() {
            let term = self.blocks[bi].term.clone();
            let last = self.blocks[bi].last_inst() as usize;
            match term {
                Terminator::CondBranch { taken, .. } => {
                    self.insts[last].target = self.block_pc(taken);
                }
                Terminator::Jump { target } => {
                    self.insts[last].target = self.block_pc(target);
                }
                Terminator::Call { callee, .. } => {
                    let entry = self.funcs[callee as usize].entry;
                    self.insts[last].target = self.block_pc(entry);
                }
                // Indirect jumps and returns have dynamic targets.
                Terminator::IndirectJump { .. }
                | Terminator::Return
                | Terminator::FallThrough { .. } => {}
            }
        }
    }

    /// Entry PC of a block.
    pub fn block_pc(&self, b: BlockId) -> u64 {
        let blk = &self.blocks[b as usize];
        self.insts[blk.first_inst as usize].addr
    }

    /// The instruction with the given id.
    pub fn inst(&self, id: InstId) -> &Inst {
        &self.insts[id as usize]
    }

    /// Total static macro-instruction count.
    pub fn num_insts(&self) -> usize {
        self.insts.len()
    }

    /// Pre-decode every instruction once (uops are reused by all pipeline
    /// models instead of re-decoding on every fetch).
    pub fn decode_all(&self) -> DecodedProgram {
        let uops = self
            .insts
            .iter()
            .enumerate()
            .map(|(i, inst)| decode::decode(inst, i as u32).into_boxed_slice())
            .collect();
        DecodedProgram { uops }
    }

    /// Internal consistency checks (used by tests and `debug_assert`s).
    pub fn validate(&self) -> Result<(), String> {
        if self.funcs.is_empty() {
            return Err("no functions".into());
        }
        for (i, b) in self.blocks.iter().enumerate() {
            if b.num_insts == 0 {
                return Err(format!("block {i} empty"));
            }
            if b.last_inst() as usize >= self.insts.len() {
                return Err(format!("block {i} out of inst range"));
            }
            let check_block = |t: BlockId| -> Result<(), String> {
                if t as usize >= self.blocks.len() {
                    Err(format!("block {i} target {t} out of range"))
                } else {
                    Ok(())
                }
            };
            match &b.term {
                Terminator::FallThrough { next } => check_block(*next)?,
                Terminator::CondBranch {
                    taken,
                    fall,
                    behavior,
                } => {
                    check_block(*taken)?;
                    check_block(*fall)?;
                    if *behavior as usize >= self.behaviors.len() {
                        return Err(format!("block {i} behavior out of range"));
                    }
                }
                Terminator::Jump { target } => check_block(*target)?,
                Terminator::IndirectJump { targets, behavior } => {
                    if targets.is_empty() {
                        return Err(format!("block {i} indirect with no targets"));
                    }
                    for t in targets {
                        check_block(*t)?;
                    }
                    if *behavior as usize >= self.behaviors.len() {
                        return Err(format!("block {i} behavior out of range"));
                    }
                }
                Terminator::Call { callee, ret_to } => {
                    if *callee as usize >= self.funcs.len() {
                        return Err(format!("block {i} callee out of range"));
                    }
                    check_block(*ret_to)?;
                }
                Terminator::Return => {}
            }
        }
        for inst in &self.insts {
            if let Some(m) = inst.kind.mem_ref() {
                if m.stream as usize >= self.addr_streams.len() {
                    return Err("mem stream out of range".into());
                }
            }
        }
        Ok(())
    }
}

/// Pre-decoded uops for every instruction of a [`Program`].
#[derive(Clone, Debug)]
pub struct DecodedProgram {
    uops: Vec<Box<[Uop]>>,
}

impl DecodedProgram {
    /// The uops of instruction `id`.
    pub fn uops(&self, id: InstId) -> &[Uop] {
        &self.uops[id as usize]
    }

    /// Total uop count across the program.
    pub fn total_uops(&self) -> usize {
        self.uops.iter().map(|u| u.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parrot_isa::{AluOp, InstKind, Operand, Reg};

    /// Tiny two-block, one-function program used across module tests.
    pub(crate) fn tiny_program() -> Program {
        let insts = vec![
            Inst::new(InstKind::IntAlu {
                op: AluOp::Add,
                dst: Reg::int(0),
                src: Reg::int(1),
                rhs: Operand::Imm(1),
            }),
            Inst::new(InstKind::Cmp {
                src: Reg::int(0),
                rhs: Operand::Imm(10),
            }),
            Inst::new(InstKind::CondBranch {
                cond: parrot_isa::Cond::Lt,
            }),
            Inst::new(InstKind::Nop),
            Inst::new(InstKind::Jump),
        ];
        let blocks = vec![
            BasicBlock {
                first_inst: 0,
                num_insts: 3,
                term: Terminator::CondBranch {
                    taken: 0,
                    fall: 1,
                    behavior: 0,
                },
            },
            BasicBlock {
                first_inst: 3,
                num_insts: 2,
                term: Terminator::Jump { target: 0 },
            },
        ];
        let mut p = Program {
            insts,
            blocks,
            funcs: vec![Function {
                entry: 0,
                num_blocks: 2,
            }],
            behaviors: vec![BranchBehavior::Loop {
                trip_mean: 4.0,
                trip_jitter: 0.0,
            }],
            addr_streams: vec![],
            stack_base: STACK_BASE,
            code_bytes: 0,
        };
        p.layout();
        p
    }

    #[test]
    fn layout_assigns_monotone_addresses() {
        let p = tiny_program();
        let mut prev = 0;
        for inst in &p.insts {
            assert!(inst.addr > prev);
            prev = inst.addr;
        }
        assert_eq!(p.insts[0].addr, CODE_BASE);
        assert!(p.code_bytes > 0);
    }

    #[test]
    fn layout_resolves_targets() {
        let p = tiny_program();
        // Block 0's branch targets block 0 (its own head: backward branch).
        assert_eq!(p.insts[2].target, p.block_pc(0));
        assert!(
            p.insts[2].target < p.insts[2].addr,
            "loop back-edge is backward"
        );
        // Block 1's jump targets block 0.
        assert_eq!(p.insts[4].target, p.block_pc(0));
    }

    #[test]
    fn validate_accepts_tiny_and_rejects_empty_block() {
        let mut p = tiny_program();
        assert!(p.validate().is_ok());
        p.blocks[0].num_insts = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn decode_all_counts_uops() {
        let p = tiny_program();
        let d = p.decode_all();
        let expect: usize = p.insts.iter().map(|i| i.kind.uop_count()).sum();
        assert_eq!(d.total_uops(), expect);
        assert_eq!(d.uops(2).len(), 1);
    }
}

//! The source abstraction that lets the simulator consume a committed
//! instruction stream either by generating it live or by replaying a
//! capture — transparently, with no dynamic dispatch on the hot path.

use std::sync::Arc;

use crate::engine::{DynInst, ExecutionEngine};
use crate::tracefmt::{ReplayCursor, TraceError, TraceFile};
use crate::Workload;

/// Where a simulation's committed instruction stream comes from: the live
/// [`ExecutionEngine`] (regenerates the stream from the program) or a
/// [`ReplayCursor`] over a `.ptrace` capture (skips all generator cost).
///
/// An enum rather than a trait object: the oracle pulls one instruction per
/// simulated commit, and a static match keeps that pull inlinable (the CI
/// CIPS gate would notice a virtual call here).
///
/// ```
/// use parrot_workloads::tracefmt::capture;
/// use parrot_workloads::{app_by_name, StreamSource, Workload};
/// use std::sync::Arc;
///
/// let wl = Workload::build(&app_by_name("gzip").expect("registered"));
/// let trace = Arc::new(capture(&wl, 1_000, 256).expect("encodable"));
/// let mut live = StreamSource::live(&wl);
/// let mut replay = StreamSource::replay(trace, &wl).expect("source matches");
/// assert!(!live.is_replay() && replay.is_replay());
/// for _ in 0..1_000 {
///     assert_eq!(live.next_inst(), replay.next_inst());
/// }
/// ```
#[derive(Debug)]
pub enum StreamSource<'p> {
    /// Generate the stream by executing the program.
    Live(ExecutionEngine<'p>),
    /// Decode the stream from a validated capture.
    Replay(ReplayCursor<'p>),
}

impl<'p> StreamSource<'p> {
    /// A live engine positioned at `wl`'s entry point.
    pub fn live(wl: &'p Workload) -> StreamSource<'p> {
        StreamSource::Live(wl.engine())
    }

    /// A replay cursor at the start of `trace`, which must have been
    /// captured from exactly `wl` ([`TraceError::SourceMismatch`] otherwise).
    pub fn replay(trace: Arc<TraceFile>, wl: &'p Workload) -> Result<StreamSource<'p>, TraceError> {
        Ok(StreamSource::Replay(ReplayCursor::new(trace, wl)?))
    }

    /// Pull the next committed instruction. Both sources are infallible
    /// here: the engine's stream is infinite, and replay is bounds-checked
    /// against the capture before simulation starts (see
    /// [`ReplayCursor::next_inst`] for the panic contract).
    #[inline]
    pub fn next_inst(&mut self) -> DynInst {
        match self {
            StreamSource::Live(eng) => eng.next().expect("engine streams are infinite"),
            StreamSource::Replay(cur) => cur.next_inst(),
        }
    }

    /// Is this source a capture replay (vs. live generation)?
    pub fn is_replay(&self) -> bool {
        matches!(self, StreamSource::Replay(_))
    }

    /// Advance the source past the first `n` committed instructions, so the
    /// next [`StreamSource::next_inst`] returns instruction `n` of the
    /// stream. Replay repositions through the slice index in O(slice)
    /// ([`ReplayCursor::seek`]) — the operation phase sampling leans on to
    /// make warmup windows cheap; a live engine can only step there, which
    /// is why sampled simulation always runs from a capture.
    pub fn skip(&mut self, n: u64) -> Result<(), TraceError> {
        match self {
            StreamSource::Live(eng) => {
                for _ in 0..n {
                    eng.next().expect("engine streams are infinite");
                }
                Ok(())
            }
            StreamSource::Replay(cur) => cur.seek(n),
        }
    }
}

//! Compact binary capture/replay of committed instruction streams.
//!
//! Every simulation is driven by the deterministic committed stream of a
//! [`crate::Workload`]. Regenerating that stream through the synthetic
//! engine on every run is pure overhead for sweeps and makes corpora
//! unshareable between machines. This module defines the `.ptrace` on-disk
//! format — versioned, checksummed, seekable — plus the encoder
//! ([`capture`]) and decoder ([`ReplayCursor`]) for it. The byte-level
//! layout is specified in DESIGN.md §16; the reader here is intentionally
//! self-describing and rejects corrupt, truncated, or version-skewed files
//! with a structured [`TraceError`] instead of panicking.
//!
//! The format stores none of the static program: instruction identity is an
//! index into the workload's [`crate::Program`] (recovered from the
//! [`AppProfile`] fingerprint in the header), control flow is run-length +
//! dictionary coded per slice, and memory addresses are per-stream deltas.
//! A per-slice index makes any window of the stream decodable without
//! touching the rest of the file.
//!
//! ```
//! use parrot_workloads::tracefmt::{capture, ReplayCursor};
//! use parrot_workloads::{app_by_name, Workload};
//! use std::sync::Arc;
//!
//! let wl = Workload::build(&app_by_name("gcc").expect("registered"));
//! let trace = Arc::new(capture(&wl, 2_000, 512).expect("encodable"));
//! let mut cursor = ReplayCursor::new(trace, &wl).expect("matching source");
//! let replayed: Vec<_> = (0..2_000).map(|_| cursor.next_inst()).collect();
//! let live: Vec<_> = wl.engine().take(2_000).collect();
//! assert_eq!(replayed, live, "replay is byte-identical to the engine");
//! ```

pub mod varint;

mod encode;
mod reader;

pub use encode::capture;
pub use reader::{decode_all, ReplayCursor};

use crate::profile::AppProfile;
use crate::program::Program;
use crate::Workload;

/// Leading file magic: ASCII `PRTRACE` plus a NUL byte.
pub const MAGIC: [u8; 8] = *b"PRTRACE\0";
/// Trailing end-of-file magic: ASCII `PTRCEND` plus a NUL byte.
pub const END_MAGIC: [u8; 8] = *b"PTRCEND\0";
/// Current (and only) version of the on-disk layout. Readers must reject
/// any other value; see DESIGN.md §16.6 for the compatibility rules.
pub const FORMAT_VERSION: u32 = 1;
/// Fixed byte length of the file header.
pub const HEADER_LEN: usize = 96;
/// Byte length of one slice-index entry.
pub const INDEX_ENTRY_LEN: usize = 32;
/// Byte length of the file trailer (checksum + end magic).
pub const TRAILER_LEN: usize = 16;
/// Byte length of the NUL-padded application-name field in the header.
pub const NAME_LEN: usize = 24;
/// Default instructions per slice used by [`capture`] when callers have no
/// preference. Small enough for fine-grained random access, large enough to
/// amortize the per-slice dictionary.
pub const DEFAULT_SLICE_INSTS: u32 = 8192;
/// Conventional file extension for captures (`corpus/<app>.ptrace`).
pub const FILE_EXT: &str = "ptrace";

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a over a byte slice, continuing from `h`.
pub(crate) fn fnv1a_bytes(h: u64, bytes: &[u8]) -> u64 {
    bytes.iter().fold(h, |h, b| {
        (h ^ u64::from(*b)).wrapping_mul(0x0000_0100_0000_01b3)
    })
}

/// Everything that can go wrong opening, validating, or decoding a trace
/// file. Every reader entry point returns this instead of panicking — a
/// corrupt corpus must never take the simulator down.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// The file does not start with [`MAGIC`]: not a trace file at all.
    BadMagic,
    /// The file's format version is not [`FORMAT_VERSION`]. Holds the
    /// version found; readers never guess at future layouts.
    UnsupportedVersion {
        /// Version number stored in the header.
        found: u32,
    },
    /// The file is shorter than its own header/index claims.
    Truncated {
        /// Bytes the layout requires.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// A structural invariant of the layout is violated (bad header field,
    /// non-contiguous slice index, trailing garbage, undecodable section).
    Malformed(String),
    /// A stored checksum does not match the bytes it covers.
    ChecksumMismatch {
        /// Which checksum failed (`"file"` or `"slice"`).
        region: &'static str,
    },
    /// The trace was captured from a different application or program shape
    /// than the one it is being replayed against.
    SourceMismatch {
        /// Fingerprint the replay workload expects.
        expected: u64,
        /// Fingerprint stored in the trace header.
        found: u64,
    },
    /// The capture holds fewer instructions than the replay requested.
    TooShort {
        /// Instructions stored in the capture.
        captured: u64,
        /// Instructions the caller asked to replay.
        requested: u64,
    },
    /// The committed stream violated an invariant the encoder relies on
    /// (derived PC/length/stack-address mismatch). Capture-side only.
    Unencodable(String),
    /// The underlying file could not be read.
    Io(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "not a parrot trace file (bad magic)"),
            TraceError::UnsupportedVersion { found } => write!(
                f,
                "unsupported trace format version {found} (this reader supports {FORMAT_VERSION})"
            ),
            TraceError::Truncated { expected, actual } => {
                write!(
                    f,
                    "truncated trace file: need {expected} bytes, have {actual}"
                )
            }
            TraceError::Malformed(why) => write!(f, "malformed trace file: {why}"),
            TraceError::ChecksumMismatch { region } => {
                write!(f, "corrupt trace file: {region} checksum mismatch")
            }
            TraceError::SourceMismatch { expected, found } => write!(
                f,
                "trace was captured from a different source \
                 (workload fingerprint {expected:016x}, trace carries {found:016x})"
            ),
            TraceError::TooShort {
                captured,
                requested,
            } => write!(
                f,
                "capture holds {captured} instructions but {requested} were requested"
            ),
            TraceError::Unencodable(why) => write!(f, "stream not encodable: {why}"),
            TraceError::Io(why) => write!(f, "cannot read trace file: {why}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Fingerprint binding a capture to the exact source that produced it: the
/// format version, the full [`AppProfile`] (every generation parameter),
/// and the generated program's shape. Replaying against any other workload
/// fails with [`TraceError::SourceMismatch`]; sweep caches fold this in so
/// replayed and generated results can never alias.
pub fn source_fingerprint(profile: &AppProfile, prog: &Program) -> u64 {
    let mut h = fnv1a_bytes(FNV_OFFSET, b"ptrc-v1;");
    h = fnv1a_bytes(h, profile.name.as_bytes());
    h = fnv1a_bytes(h, format!("{profile:?}").as_bytes());
    h = fnv1a_bytes(h, &(prog.num_insts() as u64).to_le_bytes());
    fnv1a_bytes(h, &prog.code_bytes.to_le_bytes())
}

/// One entry of the slice index: where a slice's payload lives and the
/// decoder state needed to start decoding there without reading anything
/// that precedes it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SliceEntry {
    /// Absolute file offset of the slice payload.
    pub off: usize,
    /// Payload length in bytes.
    pub len: usize,
    /// Static instruction id of the slice's first committed instruction.
    pub first_inst: u32,
    /// Call depth of the engine at the slice's first instruction (seeds the
    /// stack-address reconstruction for `Call`/`Return`).
    pub start_depth: u32,
    /// FNV-1a checksum of the payload bytes.
    pub payload_fp: u64,
}

/// A parsed, validated trace file held in memory.
///
/// Construction ([`TraceFile::parse`] / [`TraceFile::open`]) validates the
/// whole container: magic, version, structural layout, slice-index
/// contiguity, every slice checksum, and the trailing whole-file checksum.
/// A value of this type is therefore always internally consistent; only
/// source identity ([`TraceFile::check_source`]) remains to be checked
/// against a concrete workload.
///
/// ```
/// use parrot_workloads::tracefmt::{capture, TraceFile};
/// use parrot_workloads::{app_by_name, Workload};
///
/// let wl = Workload::build(&app_by_name("swim").expect("registered"));
/// let trace = capture(&wl, 1_000, 256).expect("encodable");
/// let reparsed = TraceFile::parse(trace.bytes().to_vec()).expect("valid");
/// assert_eq!(reparsed.inst_count(), 1_000);
/// assert_eq!(reparsed.app_name(), "swim");
/// assert!(reparsed.bits_per_inst() < 64.0);
/// ```
pub struct TraceFile {
    data: Vec<u8>,
    name: String,
    source_fp: u64,
    inst_count: u64,
    slice_insts: u32,
    slices: Vec<SliceEntry>,
    file_fp: u64,
}

impl std::fmt::Debug for TraceFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceFile")
            .field("app", &self.name)
            .field("insts", &self.inst_count)
            .field("slices", &self.slices.len())
            .field("bytes", &self.data.len())
            .field("source_fp", &format_args!("{:016x}", self.source_fp))
            .finish()
    }
}

fn rd_u32(b: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(b[off..off + 4].try_into().expect("bounds pre-checked"))
}

fn rd_u64(b: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(b[off..off + 8].try_into().expect("bounds pre-checked"))
}

impl TraceFile {
    /// Read and [`TraceFile::parse`] a `.ptrace` file from disk.
    pub fn open(path: impl AsRef<std::path::Path>) -> Result<TraceFile, TraceError> {
        let path = path.as_ref();
        let data =
            std::fs::read(path).map_err(|e| TraceError::Io(format!("{}: {e}", path.display())))?;
        Self::parse(data)
    }

    /// Validate a byte buffer as a version-[`FORMAT_VERSION`] trace file.
    ///
    /// The full validation pass documented in DESIGN.md §16.5 runs here:
    /// structured errors are returned for anything from a foreign file
    /// ([`TraceError::BadMagic`]) to a single flipped payload bit
    /// ([`TraceError::ChecksumMismatch`]).
    pub fn parse(data: Vec<u8>) -> Result<TraceFile, TraceError> {
        let min = HEADER_LEN + TRAILER_LEN;
        if data.len() < min {
            return Err(TraceError::Truncated {
                expected: min,
                actual: data.len(),
            });
        }
        if data[0..8] != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let version = rd_u32(&data, 0x08);
        if version != FORMAT_VERSION {
            return Err(TraceError::UnsupportedVersion { found: version });
        }
        let header_len = rd_u32(&data, 0x0c) as usize;
        if header_len != HEADER_LEN {
            return Err(TraceError::Malformed(format!(
                "header length {header_len}, expected {HEADER_LEN}"
            )));
        }
        let name_raw = &data[0x10..0x10 + NAME_LEN];
        let name_end = name_raw.iter().position(|&b| b == 0).unwrap_or(NAME_LEN);
        let name = std::str::from_utf8(&name_raw[..name_end])
            .map_err(|_| TraceError::Malformed("app name is not UTF-8".into()))?
            .to_string();
        let source_fp = rd_u64(&data, 0x28);
        let inst_count = rd_u64(&data, 0x30);
        let slice_insts = rd_u32(&data, 0x38);
        let slice_count = rd_u32(&data, 0x3c) as usize;
        let index_off = rd_u64(&data, 0x40) as usize;
        if inst_count == 0 || slice_insts == 0 {
            return Err(TraceError::Malformed("empty capture".into()));
        }
        let want_slices = inst_count.div_ceil(u64::from(slice_insts));
        if want_slices != slice_count as u64 {
            return Err(TraceError::Malformed(format!(
                "{slice_count} slices cannot cover {inst_count} instructions \
                 at {slice_insts} per slice"
            )));
        }
        let expected_len = index_off
            .checked_add(slice_count * INDEX_ENTRY_LEN)
            .and_then(|n| n.checked_add(TRAILER_LEN))
            .ok_or_else(|| TraceError::Malformed("index offset overflows".into()))?;
        if data.len() < expected_len {
            return Err(TraceError::Truncated {
                expected: expected_len,
                actual: data.len(),
            });
        }
        if data.len() > expected_len {
            return Err(TraceError::Malformed(format!(
                "{} trailing bytes after the trailer",
                data.len() - expected_len
            )));
        }
        let trailer = expected_len - TRAILER_LEN;
        if data[trailer + 8..trailer + 16] != END_MAGIC {
            return Err(TraceError::Malformed("missing end-of-file marker".into()));
        }
        let file_fp = rd_u64(&data, trailer);
        if fnv1a_bytes(FNV_OFFSET, &data[..trailer]) != file_fp {
            return Err(TraceError::ChecksumMismatch { region: "file" });
        }
        // Slice index: entries must tile [HEADER_LEN, index_off) exactly.
        let mut slices = Vec::with_capacity(slice_count);
        let mut expect_off = HEADER_LEN;
        for i in 0..slice_count {
            let e = index_off + i * INDEX_ENTRY_LEN;
            let entry = SliceEntry {
                off: rd_u64(&data, e) as usize,
                len: rd_u32(&data, e + 0x08) as usize,
                first_inst: rd_u32(&data, e + 0x0c),
                start_depth: rd_u32(&data, e + 0x10),
                payload_fp: rd_u64(&data, e + 0x18),
            };
            if entry.off != expect_off {
                return Err(TraceError::Malformed(format!(
                    "slice {i} at offset {}, expected {expect_off} (index not contiguous)",
                    entry.off
                )));
            }
            expect_off += entry.len;
            if expect_off > index_off {
                return Err(TraceError::Malformed(format!(
                    "slice {i} payload runs past the slice index"
                )));
            }
            if fnv1a_bytes(FNV_OFFSET, &data[entry.off..entry.off + entry.len]) != entry.payload_fp
            {
                return Err(TraceError::ChecksumMismatch { region: "slice" });
            }
            slices.push(entry);
        }
        if expect_off != index_off {
            return Err(TraceError::Malformed(format!(
                "{} unindexed bytes between payloads and index",
                index_off - expect_off
            )));
        }
        Ok(TraceFile {
            data,
            name,
            source_fp,
            inst_count,
            slice_insts,
            slices,
            file_fp,
        })
    }

    /// The raw on-disk bytes (what [`capture`] produced / what was read).
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Application the stream was captured from (header field).
    pub fn app_name(&self) -> &str {
        &self.name
    }

    /// Source fingerprint stored in the header (see [`source_fingerprint`]).
    pub fn source_fp(&self) -> u64 {
        self.source_fp
    }

    /// Committed instructions stored in the capture.
    pub fn inst_count(&self) -> u64 {
        self.inst_count
    }

    /// Instructions per slice (the last slice may hold fewer).
    pub fn slice_insts(&self) -> u32 {
        self.slice_insts
    }

    /// The slice index.
    pub fn slices(&self) -> &[SliceEntry] {
        &self.slices
    }

    /// Whole-file checksum from the trailer. Doubles as a content identity
    /// for cache fingerprints.
    pub fn file_fp(&self) -> u64 {
        self.file_fp
    }

    /// Average storage density of the capture.
    pub fn bits_per_inst(&self) -> f64 {
        self.data.len() as f64 * 8.0 / self.inst_count as f64
    }

    /// Verify this capture was taken from exactly `wl` (same application
    /// profile, same generated program). [`ReplayCursor::new`] calls this;
    /// sweeps call it up front for a friendlier failure.
    pub fn check_source(&self, wl: &Workload) -> Result<(), TraceError> {
        let expected = source_fingerprint(&wl.profile, &wl.program);
        if self.source_fp != expected {
            return Err(TraceError::SourceMismatch {
                expected,
                found: self.source_fp,
            });
        }
        Ok(())
    }
}

//! Capture side of the trace format: runs a workload's engine, verifies
//! every derivability invariant the decoder depends on, and assembles the
//! DESIGN.md §16 container.
//!
//! The encoder is deliberately paranoid: rather than trusting that the
//! committed stream obeys the invariants the compact encoding exploits
//! (contiguous layout, textual fall-through, stack-address discipline), it
//! checks each one per instruction and fails with
//! [`TraceError::Unencodable`] on the first violation. A capture that
//! succeeds is therefore *guaranteed* to replay byte-identically.

use std::collections::BTreeMap;

use parrot_isa::InstKind;
use parrot_telemetry::metrics;

use super::varint::{write_varint, zigzag};
use super::{
    fnv1a_bytes, source_fingerprint, TraceError, TraceFile, END_MAGIC, FORMAT_VERSION, HEADER_LEN,
    INDEX_ENTRY_LEN, MAGIC, NAME_LEN,
};
use crate::{DynInst, Workload};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// A control event: `run` textually-sequential instructions followed by one
/// control transfer whose successor id is `cti_id + 1 + delta`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    run: u64,
    ctl: u8,
    delta: i64,
}

/// Maximum dictionary entries per slice; token bytes `0x00..=0xEF` are
/// dictionary references, `0xF0`/`0xF1` are the literal/trailing-run tokens.
const DICT_MAX: usize = 0xF0;
/// Literal (non-dictionary) event token.
pub(super) const TOK_LITERAL: u8 = 0xF0;
/// Trailing sequential run token (slice ends mid-run).
pub(super) const TOK_RUN: u8 = 0xF1;

/// Capture the first `insts` committed instructions of `wl` into an
/// in-memory trace file with `slice_insts` instructions per slice (pass
/// [`super::DEFAULT_SLICE_INSTS`] absent a preference). Sets the
/// `capture:written` telemetry counter to `insts` on success.
///
/// ```
/// use parrot_workloads::tracefmt::{capture, DEFAULT_SLICE_INSTS};
/// use parrot_workloads::{app_by_name, Workload};
///
/// let wl = Workload::build(&app_by_name("twolf").expect("registered"));
/// let trace = capture(&wl, 4_000, DEFAULT_SLICE_INSTS).expect("encodable");
/// assert_eq!(trace.inst_count(), 4_000);
/// assert_eq!(trace.slices().len(), 1);
/// trace.check_source(&wl).expect("fingerprint binds trace to workload");
/// ```
pub fn capture(wl: &Workload, insts: u64, slice_insts: u32) -> Result<TraceFile, TraceError> {
    if insts == 0 {
        return Err(TraceError::Unencodable(
            "cannot capture 0 instructions".into(),
        ));
    }
    if slice_insts == 0 {
        return Err(TraceError::Unencodable(
            "slice size must be positive".into(),
        ));
    }
    let name = wl.profile.name;
    if name.len() > NAME_LEN {
        return Err(TraceError::Unencodable(format!(
            "app name {name:?} exceeds {NAME_LEN} bytes"
        )));
    }
    let prog = &wl.program;
    let mut eng = wl.engine();
    let mut cur = eng.next().expect("engine streams are infinite");
    let mut depth: u64 = 0;

    let slice_count = insts.div_ceil(u64::from(slice_insts)) as usize;
    let mut payloads: Vec<u8> = Vec::new();
    let mut index: Vec<u8> = Vec::with_capacity(slice_count * INDEX_ENTRY_LEN);
    let mut done: u64 = 0;

    for _ in 0..slice_count {
        let take = u64::from(slice_insts).min(insts - done);
        let first_inst = cur.inst;
        let start_depth = depth;

        // Pass 1 over the slice: verify invariants, collect control events
        // and per-stream address deltas.
        let mut events: Vec<Event> = Vec::new();
        let mut run: u64 = 0;
        let mut addrs: Vec<u8> = Vec::new();
        let mut last_addr: Vec<u64> = vec![0; prog.addr_streams.len()];
        for _ in 0..take {
            let next = eng.next().expect("engine streams are infinite");
            verify_static(&cur, wl)?;
            depth = verify_memory(&cur, wl, depth, &mut last_addr, &mut addrs)?;
            if cur.taken {
                let delta = i64::from(next.inst) - (i64::from(cur.inst) + 1);
                if cur.next_pc != prog.inst(next.inst).addr {
                    return Err(TraceError::Unencodable(format!(
                        "inst {}: next_pc {:#x} is not the address of successor {}",
                        cur.inst, cur.next_pc, next.inst
                    )));
                }
                events.push(Event { run, ctl: 1, delta });
                run = 0;
            } else {
                // Not-taken commits must be textually sequential or the
                // run-length encoding cannot represent them.
                if next.inst != cur.inst + 1 || cur.next_pc != cur.pc + u64::from(cur.len) {
                    return Err(TraceError::Unencodable(format!(
                        "inst {}: not-taken but successor {} is not textually next",
                        cur.inst, next.inst
                    )));
                }
                run += 1;
            }
            cur = next;
        }

        // Pass 2: deterministic dictionary over this slice's events (most
        // frequent first, ties broken by field order so captures of the
        // same stream are byte-identical regardless of allocator state).
        let mut freq: BTreeMap<Event, u64> = BTreeMap::new();
        for e in &events {
            *freq.entry(*e).or_insert(0) += 1;
        }
        let mut by_count: Vec<(Event, u64)> = freq.into_iter().filter(|(_, c)| *c >= 2).collect();
        by_count.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        by_count.truncate(DICT_MAX);
        let dict: Vec<Event> = by_count.into_iter().map(|(e, _)| e).collect();
        let dict_of = |e: &Event| dict.iter().position(|d| d == e);

        // Pass 3: token stream.
        let mut toks: Vec<u8> = Vec::new();
        for e in &events {
            match dict_of(e) {
                Some(i) => toks.push(i as u8),
                None => {
                    toks.push(TOK_LITERAL);
                    toks.push(e.ctl);
                    write_varint(&mut toks, e.run);
                    write_varint(&mut toks, zigzag(e.delta));
                }
            }
        }
        if run > 0 {
            toks.push(TOK_RUN);
            write_varint(&mut toks, run);
        }

        // Slice payload: dictionary, token section, address section.
        let off = HEADER_LEN + payloads.len();
        let mut pl: Vec<u8> = Vec::with_capacity(toks.len() + addrs.len() + 64);
        pl.push(dict.len() as u8);
        for e in &dict {
            pl.push(e.ctl);
            write_varint(&mut pl, e.run);
            write_varint(&mut pl, zigzag(e.delta));
        }
        write_varint(&mut pl, toks.len() as u64);
        pl.extend_from_slice(&toks);
        write_varint(&mut pl, addrs.len() as u64);
        pl.extend_from_slice(&addrs);

        index.extend_from_slice(&(off as u64).to_le_bytes());
        index.extend_from_slice(&(pl.len() as u32).to_le_bytes());
        index.extend_from_slice(&first_inst.to_le_bytes());
        index.extend_from_slice(&(start_depth as u32).to_le_bytes());
        index.extend_from_slice(&0u32.to_le_bytes());
        index.extend_from_slice(&fnv1a_bytes(FNV_OFFSET, &pl).to_le_bytes());
        payloads.extend_from_slice(&pl);
        done += take;
    }

    // Container: header, payloads, index, trailer.
    let index_off = HEADER_LEN + payloads.len();
    let total = index_off + index.len() + super::TRAILER_LEN;
    let mut out: Vec<u8> = Vec::with_capacity(total);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(HEADER_LEN as u32).to_le_bytes());
    let mut name_field = [0u8; NAME_LEN];
    name_field[..name.len()].copy_from_slice(name.as_bytes());
    out.extend_from_slice(&name_field);
    out.extend_from_slice(&source_fingerprint(&wl.profile, prog).to_le_bytes());
    out.extend_from_slice(&insts.to_le_bytes());
    out.extend_from_slice(&slice_insts.to_le_bytes());
    out.extend_from_slice(&(slice_count as u32).to_le_bytes());
    out.extend_from_slice(&(index_off as u64).to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes()); // flags
    out.resize(HEADER_LEN, 0); // reserved
    out.extend_from_slice(&payloads);
    out.extend_from_slice(&index);
    out.extend_from_slice(&fnv1a_bytes(FNV_OFFSET, &out).to_le_bytes());
    out.extend_from_slice(&END_MAGIC);
    debug_assert_eq!(out.len(), total);

    let file = TraceFile::parse(out).expect("encoder output must self-validate");
    metrics::counter_set("capture:written", insts);
    Ok(file)
}

/// Check the fields the decoder derives from the static program.
fn verify_static(d: &DynInst, wl: &Workload) -> Result<(), TraceError> {
    let inst = wl.program.inst(d.inst);
    if d.pc != inst.addr || d.len != inst.len {
        return Err(TraceError::Unencodable(format!(
            "inst {}: committed pc/len {:#x}/{} disagree with layout {:#x}/{}",
            d.inst, d.pc, d.len, inst.addr, inst.len
        )));
    }
    Ok(())
}

/// Check the memory fields, appending explicit address deltas for stream
/// references and verifying stack discipline for calls/returns. Returns the
/// call depth after this instruction.
fn verify_memory(
    d: &DynInst,
    wl: &Workload,
    depth: u64,
    last_addr: &mut [u64],
    addrs: &mut Vec<u8>,
) -> Result<u64, TraceError> {
    let kind = &wl.program.inst(d.inst).kind;
    if let Some(m) = kind.mem_ref() {
        if !d.has_mem {
            return Err(TraceError::Unencodable(format!(
                "inst {}: memory op committed without an address",
                d.inst
            )));
        }
        let sid = m.stream as usize;
        let delta = d.eff_addr.wrapping_sub(last_addr[sid]) as i64;
        write_varint(addrs, zigzag(delta));
        last_addr[sid] = d.eff_addr;
        return Ok(depth);
    }
    match kind {
        InstKind::Call => {
            let want = wl.program.stack_base - 8 * (depth + 1);
            if !d.has_mem || d.eff_addr != want {
                return Err(TraceError::Unencodable(format!(
                    "inst {}: call at depth {depth} pushed at {:#x}, expected {want:#x}",
                    d.inst, d.eff_addr
                )));
            }
            Ok(depth + 1)
        }
        InstKind::Return => {
            let want = wl.program.stack_base - 8 * depth.max(1);
            if !d.has_mem || d.eff_addr != want {
                return Err(TraceError::Unencodable(format!(
                    "inst {}: return at depth {depth} popped at {:#x}, expected {want:#x}",
                    d.inst, d.eff_addr
                )));
            }
            Ok(depth.saturating_sub(1))
        }
        _ => {
            if d.has_mem || d.eff_addr != 0 {
                return Err(TraceError::Unencodable(format!(
                    "inst {}: non-memory op committed with an address",
                    d.inst
                )));
            }
            Ok(depth)
        }
    }
}

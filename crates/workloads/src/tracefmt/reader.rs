//! Replay side of the trace format: a streaming cursor that re-materializes
//! the committed [`DynInst`] stream from a parsed [`TraceFile`] plus the
//! static [`crate::Program`] it was captured from.
//!
//! Slices are self-contained (DESIGN.md §16.4): [`ReplayCursor::at_slice`]
//! jumps to any slice boundary using only that slice's index entry, which
//! is what phase-sampled simulation will build on.

use std::sync::Arc;

use parrot_isa::InstKind;

use super::encode::{TOK_LITERAL, TOK_RUN};
use super::varint::{read_varint, unzigzag};
use super::{TraceError, TraceFile};
use crate::program::Program;
use crate::{DynInst, Workload};

/// An event pulled from the dictionary or a literal token: `run` sequential
/// instructions, then one control transfer (`ctl` bit 0 = taken) whose
/// successor id is `cti_id + 1 + delta`.
#[derive(Clone, Copy)]
struct Event {
    run: u64,
    ctl: u8,
    delta: i64,
}

/// Streaming decoder over a captured trace.
///
/// Construction verifies the trace's source fingerprint against the
/// workload, so a cursor can only exist for the exact program that was
/// captured. The hot-path [`ReplayCursor::next_inst`] is infallible — every
/// container-level corruption is rejected at [`TraceFile::parse`] time by
/// checksums, so a decode failure past that point means the file was
/// hand-crafted; use [`ReplayCursor::try_next`] or [`decode_all`] when the
/// input is untrusted and a structured [`TraceError`] is required.
///
/// ```
/// use parrot_workloads::tracefmt::{capture, ReplayCursor};
/// use parrot_workloads::{app_by_name, Workload};
/// use std::sync::Arc;
///
/// let wl = Workload::build(&app_by_name("vpr").expect("registered"));
/// let trace = Arc::new(capture(&wl, 1_500, 300).expect("encodable"));
/// let mut cur = ReplayCursor::new(trace, &wl).expect("source matches");
/// let live = wl.engine().nth(0).expect("infinite stream");
/// assert_eq!(cur.next_inst(), live);
/// assert_eq!(cur.read(), 1);
/// ```
pub struct ReplayCursor<'p> {
    trace: Arc<TraceFile>,
    prog: &'p Program,
    /// Slice currently buffered.
    slice: usize,
    /// The current slice, fully decoded. Batch-decoding one slice at a
    /// time keeps the per-instruction hot path a plain buffer read while
    /// bounding memory at one slice regardless of capture length.
    buf: Vec<DynInst>,
    buf_pos: usize,
    /// Decoder state after the buffered slice, checked against the next
    /// slice's index restart on sequential advance.
    end_id: u32,
    end_depth: u64,
    /// Per-stream previous effective address (reset per slice).
    last_addr: Vec<u64>,
    /// Total instructions emitted.
    read: u64,
}

impl<'p> ReplayCursor<'p> {
    /// Open a cursor at the start of the capture. Fails with
    /// [`TraceError::SourceMismatch`] if the trace was not captured from
    /// `wl`, or [`TraceError::Malformed`] if the first slice's metadata is
    /// inconsistent.
    pub fn new(trace: Arc<TraceFile>, wl: &'p Workload) -> Result<ReplayCursor<'p>, TraceError> {
        trace.check_source(wl)?;
        let mut c = ReplayCursor {
            trace,
            prog: &wl.program,
            slice: 0,
            buf: Vec::new(),
            buf_pos: 0,
            end_id: 0,
            end_depth: 0,
            last_addr: vec![0; wl.program.addr_streams.len()],
            read: 0,
        };
        c.load_slice(0)?;
        Ok(c)
    }

    /// Total instructions emitted so far (the `replay:read` counter value).
    pub fn read(&self) -> u64 {
        self.read
    }

    /// The trace being replayed.
    pub fn trace(&self) -> &TraceFile {
        &self.trace
    }

    /// Reposition at the start of slice `i`, using only that slice's index
    /// entry (random access). `read()` restarts from the slice's global
    /// position.
    pub fn at_slice(&mut self, i: usize) -> Result<(), TraceError> {
        self.load_slice(i)?;
        self.read = i as u64 * u64::from(self.trace.slice_insts());
        Ok(())
    }

    /// Batch-decode slice `i` into the instruction buffer, validating the
    /// whole payload (section framing, dictionary references, id bounds,
    /// token/address sections consumed exactly) as it goes.
    fn load_slice(&mut self, i: usize) -> Result<(), TraceError> {
        let trace = Arc::clone(&self.trace);
        let entries = trace.slices();
        let entry = *entries.get(i).ok_or_else(|| {
            TraceError::Malformed(format!("slice {i} out of range ({})", entries.len()))
        })?;
        let per = u64::from(trace.slice_insts());
        let slice_len = per.min(trace.inst_count() - i as u64 * per) as usize;
        self.slice = i;
        self.buf.clear();
        self.buf_pos = 0;
        self.buf.reserve(slice_len);
        self.last_addr.iter_mut().for_each(|a| *a = 0);

        // Section framing.
        let data = trace.bytes();
        let pl = &data[entry.off..entry.off + entry.len];
        let mut pos = 0usize;
        let dict_count = *pl
            .first()
            .ok_or_else(|| TraceError::Malformed(format!("slice {i}: empty payload")))?
            as usize;
        pos += 1;
        if dict_count >= TOK_LITERAL as usize {
            return Err(TraceError::Malformed(format!(
                "slice {i}: dictionary of {dict_count} entries exceeds the token space"
            )));
        }
        let mut dict: Vec<Event> = Vec::with_capacity(dict_count);
        for _ in 0..dict_count {
            let (ev, used) = read_event(&pl[pos..])
                .ok_or_else(|| TraceError::Malformed(format!("slice {i}: truncated dictionary")))?;
            dict.push(ev);
            pos += used;
        }
        let (tok_len, used) = read_varint(&pl[pos..])
            .ok_or_else(|| TraceError::Malformed(format!("slice {i}: missing token length")))?;
        pos += used;
        let mut tok_pos = pos;
        pos = pos
            .checked_add(tok_len as usize)
            .filter(|p| *p <= pl.len())
            .ok_or_else(|| TraceError::Malformed(format!("slice {i}: token section overruns")))?;
        let tok_end = pos;
        let (addr_len, used) = read_varint(&pl[pos..])
            .ok_or_else(|| TraceError::Malformed(format!("slice {i}: missing address length")))?;
        pos += used;
        let mut addr_pos = pos;
        pos = pos
            .checked_add(addr_len as usize)
            .filter(|p| *p == pl.len())
            .ok_or_else(|| {
                TraceError::Malformed(format!("slice {i}: address section does not end the slice"))
            })?;
        let addr_end = pos;

        // Event loop: every event makes progress (a CTI, or a nonempty
        // trailing run), so this terminates at exactly `slice_len`.
        let mut id = entry.first_inst;
        let mut depth = u64::from(entry.start_depth);
        let num_insts = self.prog.num_insts();
        while self.buf.len() < slice_len {
            if tok_pos >= tok_end {
                return Err(TraceError::Malformed(format!(
                    "slice {i}: token stream ends {} instructions early",
                    slice_len - self.buf.len()
                )));
            }
            let tok = pl[tok_pos];
            tok_pos += 1;
            let ev = match tok {
                TOK_LITERAL => {
                    let (ev, used) = read_event(&pl[tok_pos..tok_end]).ok_or_else(|| {
                        TraceError::Malformed(format!("slice {i}: truncated literal event"))
                    })?;
                    tok_pos += used;
                    ev
                }
                TOK_RUN => {
                    let (run, used) = read_varint(&pl[tok_pos..tok_end]).ok_or_else(|| {
                        TraceError::Malformed(format!("slice {i}: truncated trailing run"))
                    })?;
                    tok_pos += used;
                    // A trailing run has no CTI: it must cover exactly the
                    // rest of the slice.
                    if run != (slice_len - self.buf.len()) as u64 {
                        return Err(TraceError::Malformed(format!(
                            "slice {i}: trailing run of {run} does not close the slice"
                        )));
                    }
                    Event {
                        run,
                        ctl: 0xFF,
                        delta: 0,
                    }
                }
                d => *dict.get(d as usize).ok_or_else(|| {
                    TraceError::Malformed(format!(
                        "slice {i}: dictionary reference {d} out of range ({})",
                        dict.len()
                    ))
                })?,
            };
            let trailing = ev.ctl == 0xFF;
            let emitted = ev.run + u64::from(!trailing);
            if !trailing && self.buf.len() as u64 + emitted > slice_len as u64 {
                return Err(TraceError::Malformed(format!(
                    "slice {i}: token stream overruns the slice"
                )));
            }
            // All ids this event emits are sequential from `id`; bound
            // them once instead of per instruction.
            if u64::from(id) + emitted > num_insts as u64 {
                return Err(TraceError::Malformed(format!(
                    "slice {i}: instruction id {} outside the program",
                    u64::from(id) + emitted - 1
                )));
            }
            // The event's id range is bounds-checked above, so the run can
            // iterate the instruction table slice directly.
            let run_insts = &self.prog.insts[id as usize..id as usize + ev.run as usize];
            for inst in run_insts {
                let (eff_addr, has_mem) = eff_addr(
                    self.prog,
                    &inst.kind,
                    pl,
                    &mut addr_pos,
                    addr_end,
                    &mut self.last_addr,
                    &mut depth,
                    i,
                )?;
                self.buf.push(DynInst {
                    inst: id,
                    pc: inst.addr,
                    len: inst.len,
                    taken: false,
                    next_pc: inst.addr + u64::from(inst.len),
                    eff_addr,
                    has_mem,
                });
                id += 1;
            }
            if trailing {
                continue;
            }
            let next_id = (i64::from(id) + 1 + ev.delta) as u32;
            if (next_id as usize) >= num_insts {
                return Err(TraceError::Malformed(format!(
                    "slice {i}: control transfer to id {next_id} outside the program"
                )));
            }
            let inst = self.prog.inst(id);
            let (ea, has_mem) = eff_addr(
                self.prog,
                &inst.kind,
                pl,
                &mut addr_pos,
                addr_end,
                &mut self.last_addr,
                &mut depth,
                i,
            )?;
            self.buf.push(DynInst {
                inst: id,
                pc: inst.addr,
                len: inst.len,
                taken: ev.ctl & 1 != 0,
                next_pc: self.prog.inst(next_id).addr,
                eff_addr: ea,
                has_mem,
            });
            id = next_id;
        }
        if tok_pos != tok_end {
            return Err(TraceError::Malformed(format!(
                "slice {i}: token stream overruns the slice"
            )));
        }
        if addr_pos != addr_end {
            return Err(TraceError::Malformed(format!(
                "slice {i}: {} unconsumed address bytes",
                addr_end - addr_pos
            )));
        }
        self.end_id = id;
        self.end_depth = depth;
        Ok(())
    }

    /// Reposition at absolute stream position `pos` (instructions from the
    /// start of the capture), so the next decode returns instruction `pos`.
    /// Random access: jumps to the enclosing slice through its index entry
    /// ([`ReplayCursor::at_slice`]) and decodes at most one slice's worth of
    /// instructions to land mid-slice. Fails with [`TraceError::TooShort`]
    /// when the capture does not extend past `pos`.
    pub fn seek(&mut self, pos: u64) -> Result<(), TraceError> {
        if pos >= self.trace.inst_count() {
            return Err(TraceError::TooShort {
                captured: self.trace.inst_count(),
                requested: pos + 1,
            });
        }
        let per = u64::from(self.trace.slice_insts());
        self.at_slice((pos / per) as usize)?;
        for _ in 0..pos % per {
            self.try_next()?;
        }
        Ok(())
    }

    /// Decode the next committed instruction, or a structured error if the
    /// payload is internally inconsistent (possible only for hand-crafted
    /// files — checksums catch accidental corruption at parse time).
    pub fn try_next(&mut self) -> Result<DynInst, TraceError> {
        if self.buf_pos == self.buf.len() {
            if self.read >= self.trace.inst_count() {
                return Err(TraceError::TooShort {
                    captured: self.trace.inst_count(),
                    requested: self.read + 1,
                });
            }
            let next = self.slice + 1;
            let (expect_id, expect_depth) = (self.end_id, self.end_depth);
            self.load_slice(next)?;
            let entry = self.trace.slices()[next];
            if entry.first_inst != expect_id || u64::from(entry.start_depth) != expect_depth {
                return Err(TraceError::Malformed(format!(
                    "slice {next}: index restart (inst {}, depth {}) disagrees with \
                     the decoded stream (inst {expect_id}, depth {expect_depth})",
                    entry.first_inst, entry.start_depth
                )));
            }
        }
        let d = self.buf[self.buf_pos];
        self.buf_pos += 1;
        self.read += 1;
        Ok(d)
    }

    /// Infallible hot-path decode for the simulator's oracle stream: a
    /// buffer read, with a batch decode of the next slice every
    /// [`TraceFile::slice_insts`] calls.
    ///
    /// # Panics
    ///
    /// Panics if the payload is internally inconsistent or the cursor is
    /// advanced past [`TraceFile::inst_count`]. Neither can happen for a
    /// file that [`TraceFile::parse`] accepted and an instruction budget
    /// validated against the capture — see [`ReplayCursor::try_next`] for
    /// the fallible form.
    #[inline]
    pub fn next_inst(&mut self) -> DynInst {
        if self.buf_pos < self.buf.len() {
            let d = self.buf[self.buf_pos];
            self.buf_pos += 1;
            self.read += 1;
            return d;
        }
        match self.try_next() {
            Ok(d) => d,
            Err(e) => panic!("trace replay failed past validation: {e}"),
        }
    }
}

/// Effective-address reconstruction for one instruction: memory ops read a
/// per-stream zigzag delta from the address section, calls/returns derive
/// the stack slot from the tracked depth, everything else has none.
#[allow(clippy::too_many_arguments)]
fn eff_addr(
    prog: &Program,
    kind: &InstKind,
    pl: &[u8],
    addr_pos: &mut usize,
    addr_end: usize,
    last_addr: &mut [u64],
    depth: &mut u64,
    slice: usize,
) -> Result<(u64, bool), TraceError> {
    if let Some(m) = kind.mem_ref() {
        let (zz, used) = read_varint(&pl[*addr_pos..addr_end]).ok_or_else(|| {
            TraceError::Malformed(format!("slice {slice}: address section exhausted"))
        })?;
        *addr_pos += used;
        let sid = m.stream as usize;
        let addr = last_addr[sid].wrapping_add(unzigzag(zz) as u64);
        last_addr[sid] = addr;
        return Ok((addr, true));
    }
    match kind {
        InstKind::Call => {
            let addr = prog.stack_base - 8 * (*depth + 1);
            *depth += 1;
            Ok((addr, true))
        }
        InstKind::Return => {
            let addr = prog.stack_base - 8 * (*depth).max(1);
            *depth = depth.saturating_sub(1);
            Ok((addr, true))
        }
        _ => Ok((0, false)),
    }
}

impl std::fmt::Debug for ReplayCursor<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplayCursor")
            .field("app", &self.trace.app_name())
            .field("slice", &self.slice)
            .field("read", &self.read)
            .finish()
    }
}

fn read_event(buf: &[u8]) -> Option<(Event, usize)> {
    let ctl = *buf.first()?;
    let mut pos = 1usize;
    let (run, used) = read_varint(&buf[pos..])?;
    pos += used;
    let (zz, used) = read_varint(&buf[pos..])?;
    pos += used;
    Some((
        Event {
            run,
            ctl,
            delta: unzigzag(zz),
        },
        pos,
    ))
}

/// Decode an entire capture fallibly — the validation path used by
/// `parrot replay --verify` and by tests on untrusted files. Returns the
/// full committed stream or the first structural error.
///
/// ```
/// use parrot_workloads::tracefmt::{capture, decode_all};
/// use parrot_workloads::{app_by_name, Workload};
/// use std::sync::Arc;
///
/// let wl = Workload::build(&app_by_name("art").expect("registered"));
/// let trace = Arc::new(capture(&wl, 800, 128).expect("encodable"));
/// let stream = decode_all(&trace, &wl).expect("decodes");
/// assert_eq!(stream.len(), 800);
/// ```
pub fn decode_all(trace: &Arc<TraceFile>, wl: &Workload) -> Result<Vec<DynInst>, TraceError> {
    let mut cur = ReplayCursor::new(Arc::clone(trace), wl)?;
    let n = trace.inst_count() as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(cur.try_next()?);
    }
    Ok(out)
}

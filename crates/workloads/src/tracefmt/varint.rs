//! LEB128 variable-length integers and zigzag signed mapping — the two
//! primitive encodings every section of the on-disk trace format is built
//! from (DESIGN.md §16.2).
//!
//! ```
//! use parrot_workloads::tracefmt::varint::{read_varint, write_varint, zigzag, unzigzag};
//!
//! let mut buf = Vec::new();
//! write_varint(&mut buf, zigzag(-3));
//! let (v, used) = read_varint(&buf).unwrap();
//! assert_eq!(unzigzag(v), -3);
//! assert_eq!(used, 1);
//! ```

/// Append `v` to `out` as an unsigned LEB128 varint (7 payload bits per
/// byte, high bit = continuation; at most 10 bytes for a `u64`).
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decode an unsigned LEB128 varint from the front of `buf`, returning the
/// value and the number of bytes consumed. `None` on truncation or on an
/// encoding longer than 10 bytes (which cannot be a canonical `u64`).
pub fn read_varint(buf: &[u8]) -> Option<(u64, usize)> {
    let mut v: u64 = 0;
    for (i, b) in buf.iter().enumerate().take(10) {
        v |= u64::from(b & 0x7f) << (7 * i);
        if b & 0x80 == 0 {
            return Some((v, i + 1));
        }
    }
    None
}

/// Map a signed integer onto an unsigned one with small absolute values
/// staying small: `0, -1, 1, -2, 2, …` → `0, 1, 2, 3, 4, …`.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrips_edge_values() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            assert!(buf.len() <= 10);
            let (back, used) = read_varint(&buf).expect("decodes");
            assert_eq!(back, v);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn varint_rejects_truncation() {
        let mut buf = Vec::new();
        write_varint(&mut buf, u64::MAX);
        buf.pop();
        // All remaining bytes carry the continuation bit: truncated.
        assert!(read_varint(&buf).is_none());
        assert!(read_varint(&[]).is_none());
    }

    #[test]
    fn zigzag_roundtrips_and_orders_by_magnitude() {
        for v in [0i64, -1, 1, -2, 2, i64::MIN, i64::MAX] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert!(zigzag(-1) < zigzag(2));
        assert!(zigzag(3) < zigzag(-4));
    }
}

//! Property tests over the workload substrate: arbitrary (bounded) profiles
//! must generate valid programs whose execution streams obey the chaining
//! and memory invariants every downstream consumer relies on.

use parrot_workloads::{generate_program, AppProfile, ExecutionEngine, Suite};
use proptest::prelude::*;

fn arb_profile() -> impl Strategy<Value = AppProfile> {
    (
        0u64..1_000_000,          // seed
        2u32..20,                 // num_funcs
        3u32..12,                 // regions_per_func
        (2u32..6, 6u32..16),      // block_len
        0.0f64..0.3,              // fp_frac
        0.1f64..0.4,              // mem_frac
        0.0f64..0.5,              // loop_frac
        2.0f64..80.0,             // trip_mean
        0.55f64..0.99,            // branch_bias
        0.0f64..0.25,             // call_frac
        0.5f64..1.8,              // zipf_theta
        64u32..2048,              // data_kb
    )
        .prop_map(
            |(seed, num_funcs, regions, block_len, fp, mem, loopf, trip, bias, call, zipf, data)| {
                let mut p = AppProfile::suite_base(Suite::SpecInt);
                p.seed = seed;
                p.num_funcs = num_funcs;
                p.regions_per_func = regions;
                p.block_len = block_len;
                p.fp_frac = fp;
                p.mem_frac = mem;
                p.loop_frac = loopf;
                p.trip_mean = trip;
                p.branch_bias = bias;
                p.call_frac = call;
                p.zipf_theta = zipf;
                p.data_kb = data;
                p
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arbitrary_profiles_generate_valid_programs(profile in arb_profile()) {
        let prog = generate_program(&profile);
        prop_assert_eq!(prog.validate(), Ok(()));
        prop_assert!(prog.num_insts() > 50);
        prop_assert!(prog.code_bytes > 0);
    }

    #[test]
    fn streams_chain_and_stay_in_bounds(profile in arb_profile()) {
        let prog = generate_program(&profile);
        let stream: Vec<_> = ExecutionEngine::new(&prog).take(3_000).collect();
        prop_assert_eq!(stream.len(), 3_000, "streams are infinite");
        for w in stream.windows(2) {
            prop_assert_eq!(w[0].next_pc, w[1].pc, "next_pc chains");
        }
        for d in &stream {
            let inst = prog.inst(d.inst);
            prop_assert_eq!(inst.addr, d.pc, "pc matches the static instruction");
            if d.has_mem {
                prop_assert!(d.eff_addr > 0, "memory ops carry addresses");
            }
            if !d.taken && !inst.kind.is_cti() {
                prop_assert_eq!(d.next_pc, inst.next_pc(), "sequential flow");
            }
        }
    }

    #[test]
    fn identical_seeds_reproduce_identical_streams(profile in arb_profile()) {
        let a = generate_program(&profile);
        let b = generate_program(&profile);
        let sa: Vec<_> = ExecutionEngine::new(&a).take(500).collect();
        let sb: Vec<_> = ExecutionEngine::new(&b).take(500).collect();
        prop_assert_eq!(sa, sb);
    }
}

//! Randomized-property tests over the workload substrate (seeded in-tree
//! PRNG; formerly proptest): arbitrary (bounded) profiles must generate
//! valid programs whose execution streams obey the chaining and memory
//! invariants every downstream consumer relies on.

use parrot_workloads::rng::Xorshift64Star;
use parrot_workloads::{generate_program, AppProfile, ExecutionEngine, Suite};

const CASES: u64 = 48;

fn arb_profile(r: &mut Xorshift64Star) -> AppProfile {
    let mut p = AppProfile::suite_base(Suite::SpecInt);
    p.seed = r.u64_in(0, 1_000_000);
    p.num_funcs = r.u32_in(2, 20);
    p.regions_per_func = r.u32_in(3, 12);
    p.block_len = (r.u32_in(2, 6), r.u32_in(6, 16));
    p.fp_frac = r.f64_in(0.0, 0.3);
    p.mem_frac = r.f64_in(0.1, 0.4);
    p.loop_frac = r.f64_in(0.0, 0.5);
    p.trip_mean = r.f64_in(2.0, 80.0);
    p.branch_bias = r.f64_in(0.55, 0.99);
    p.call_frac = r.f64_in(0.0, 0.25);
    p.zipf_theta = r.f64_in(0.5, 1.8);
    p.data_kb = r.u32_in(64, 2048);
    p
}

#[test]
fn arbitrary_profiles_generate_valid_programs() {
    let mut r = Xorshift64Star::seed_from_u64(0x5757_0001);
    for case in 0..CASES {
        let profile = arb_profile(&mut r);
        let prog = generate_program(&profile);
        assert_eq!(prog.validate(), Ok(()), "case {case}: {profile:?}");
        assert!(prog.num_insts() > 50, "case {case}");
        assert!(prog.code_bytes > 0, "case {case}");
    }
}

#[test]
fn streams_chain_and_stay_in_bounds() {
    let mut r = Xorshift64Star::seed_from_u64(0x5757_0002);
    for case in 0..CASES {
        let profile = arb_profile(&mut r);
        let prog = generate_program(&profile);
        let stream: Vec<_> = ExecutionEngine::new(&prog).take(3_000).collect();
        assert_eq!(stream.len(), 3_000, "case {case}: streams are infinite");
        for w in stream.windows(2) {
            assert_eq!(w[0].next_pc, w[1].pc, "case {case}: next_pc chains");
        }
        for d in &stream {
            let inst = prog.inst(d.inst);
            assert_eq!(
                inst.addr, d.pc,
                "case {case}: pc matches the static instruction"
            );
            if d.has_mem {
                assert!(d.eff_addr > 0, "case {case}: memory ops carry addresses");
            }
            if !d.taken && !inst.kind.is_cti() {
                assert_eq!(d.next_pc, inst.next_pc(), "case {case}: sequential flow");
            }
        }
    }
}

#[test]
fn identical_seeds_reproduce_identical_streams() {
    let mut r = Xorshift64Star::seed_from_u64(0x5757_0003);
    for _ in 0..CASES {
        let profile = arb_profile(&mut r);
        let a = generate_program(&profile);
        let b = generate_program(&profile);
        let sa: Vec<_> = ExecutionEngine::new(&a).take(500).collect();
        let sb: Vec<_> = ExecutionEngine::new(&b).take(500).collect();
        assert_eq!(sa, sb);
    }
}

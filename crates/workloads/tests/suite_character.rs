//! Characterization tests: the statistical structure the substitution
//! argument (DESIGN.md §2) promises must actually hold in the generated
//! streams — per-suite instruction mix, hot/cold skew and regularity
//! orderings that drive every PARROT result.

use parrot_workloads::{AppProfile, ExecutionEngine, Suite, Workload};
use std::collections::HashMap;

struct Character {
    branch_density: f64,
    mem_density: f64,
    fp_density: f64,
    uops_per_inst: f64,
    top10_coverage: f64,
    mean_run_between_taken: f64,
}

fn characterize(suite: Suite) -> Character {
    let wl = Workload::build(&AppProfile::suite_base(suite));
    let n = 120_000usize;
    let mut branches = 0u64;
    let mut mems = 0u64;
    let mut fps = 0u64;
    let mut uops = 0u64;
    let mut taken = 0u64;
    let mut counts: HashMap<u32, u64> = HashMap::new();
    for d in ExecutionEngine::new(&wl.program).take(n) {
        let kind = wl.program.inst(d.inst).kind;
        uops += kind.uop_count() as u64;
        if kind.is_cond_branch() {
            branches += 1;
        }
        if d.taken {
            taken += 1;
        }
        if kind.mem_ref().is_some() {
            mems += 1;
        }
        if matches!(
            kind,
            parrot_isa::InstKind::FpAlu { .. }
                | parrot_isa::InstKind::FpLoad { .. }
                | parrot_isa::InstKind::FpStore { .. }
        ) {
            fps += 1;
        }
        *counts.entry(d.inst).or_insert(0) += 1;
    }
    let mut freqs: Vec<u64> = counts.values().copied().collect();
    freqs.sort_unstable_by(|a, b| b.cmp(a));
    let top10: u64 = freqs.iter().take((freqs.len() / 10).max(1)).sum();
    Character {
        branch_density: branches as f64 / n as f64,
        mem_density: mems as f64 / n as f64,
        fp_density: fps as f64 / n as f64,
        uops_per_inst: uops as f64 / n as f64,
        top10_coverage: top10 as f64 / n as f64,
        mean_run_between_taken: n as f64 / taken.max(1) as f64,
    }
}

#[test]
fn instruction_mixes_are_cisc_like() {
    for suite in Suite::ALL {
        let c = characterize(suite);
        assert!(
            (1.0..1.8).contains(&c.uops_per_inst),
            "{suite}: uops/inst {:.2} outside CISC band",
            c.uops_per_inst
        );
        assert!(
            (0.05..0.30).contains(&c.branch_density),
            "{suite}: branch density {:.2}",
            c.branch_density
        );
        assert!(
            (0.15..0.50).contains(&c.mem_density),
            "{suite}: memory density {:.2}",
            c.mem_density
        );
        assert!(
            c.mean_run_between_taken > 3.0,
            "{suite}: taken CTIs too dense ({:.1} insts apart)",
            c.mean_run_between_taken
        );
    }
}

#[test]
fn specfp_is_the_fp_suite() {
    let fp = characterize(Suite::SpecFp).fp_density;
    let int = characterize(Suite::SpecInt).fp_density;
    assert!(fp > 0.15, "SpecFP fp density {fp:.2}");
    assert!(int < 0.05, "SpecInt fp density {int:.2}");
}

#[test]
fn hot_cold_skew_holds_everywhere() {
    // The 90/10 premise: the hottest tenth of executed static instructions
    // covers the majority of the dynamic stream, most strongly for SpecFP.
    let mut by_suite = Vec::new();
    for suite in Suite::ALL {
        let c = characterize(suite);
        assert!(
            c.top10_coverage > 0.4,
            "{suite}: top-10% static insts cover only {:.1}%",
            c.top10_coverage * 100.0
        );
        by_suite.push((suite, c.top10_coverage));
    }
    // (Per-suite orderings of *trace* coverage — the metric the paper uses —
    // are asserted at machine level in tests/full_machine.rs; static-inst
    // skew is only bounded from below here.)
}

#[test]
fn specint_branches_densest() {
    let int = characterize(Suite::SpecInt).branch_density;
    let fp = characterize(Suite::SpecFp).branch_density;
    assert!(
        int > fp,
        "SpecInt ({int:.3}) must branch more than SpecFP ({fp:.3})"
    );
}

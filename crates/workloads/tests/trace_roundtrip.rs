//! Roundtrip and rejection properties of the on-disk trace format
//! (DESIGN.md §16): capture→replay must be byte-identical to the live
//! engine for every registered application, captures must be deterministic,
//! random slice access must agree with sequential decode, and every
//! corruption mode must be rejected with the right structured error.

use parrot_workloads::tracefmt::{
    capture, decode_all, ReplayCursor, TraceError, TraceFile, FORMAT_VERSION, HEADER_LEN, MAGIC,
};
use parrot_workloads::{all_apps, app_by_name, Workload};
use std::sync::Arc;

const INSTS: u64 = 30_000;
/// Deliberately small and non-dividing so every capture has many slices and
/// a ragged final slice.
const SLICE: u32 = 700;

fn wl(name: &str) -> Workload {
    Workload::build(&app_by_name(name).expect("registered app"))
}

#[test]
fn roundtrip_is_byte_identical_for_all_apps() {
    for p in all_apps() {
        let wl = Workload::build(&p);
        let trace = Arc::new(capture(&wl, INSTS, SLICE).expect("encodable"));
        let live: Vec<_> = wl.engine().take(INSTS as usize).collect();
        let replayed = decode_all(&trace, &wl).expect("decodes");
        assert_eq!(
            replayed, live,
            "{}: replay diverges from the engine",
            p.name
        );
        assert!(
            trace.bits_per_inst() < 16.0,
            "{}: {:.2} bits/inst is not a compact encoding",
            p.name,
            trace.bits_per_inst()
        );
    }
}

#[test]
fn capture_is_deterministic() {
    let w = wl("gcc");
    let a = capture(&w, 10_000, 512).expect("encodable");
    let b = capture(&w, 10_000, 512).expect("encodable");
    assert_eq!(a.bytes(), b.bytes(), "same stream must encode identically");
    assert_eq!(a.file_fp(), b.file_fp());
}

#[test]
fn reparse_of_written_bytes_is_lossless() {
    let w = wl("vortex");
    let trace = capture(&w, 5_000, 256).expect("encodable");
    let reparsed = TraceFile::parse(trace.bytes().to_vec()).expect("valid");
    assert_eq!(reparsed.inst_count(), trace.inst_count());
    assert_eq!(reparsed.app_name(), "vortex");
    assert_eq!(reparsed.source_fp(), trace.source_fp());
    assert_eq!(reparsed.slices(), trace.slices());
    assert_eq!(reparsed.file_fp(), trace.file_fp());
}

#[test]
fn random_slice_access_matches_sequential_decode() {
    let w = wl("equake");
    let trace = Arc::new(capture(&w, 20_000, 1_000).expect("encodable"));
    let all = decode_all(&trace, &w).expect("decodes");
    let mut cur = ReplayCursor::new(Arc::clone(&trace), &w).expect("source matches");
    // Jump around out of order; each slice must decode from its index entry
    // alone, independent of everything before it.
    for slice in [7usize, 0, 19, 3, 12] {
        cur.at_slice(slice).expect("in range");
        let start = slice * 1_000;
        assert_eq!(cur.read(), start as u64);
        for (k, want) in all[start..start + 1_000].iter().enumerate() {
            let got = cur.try_next().expect("decodes");
            assert_eq!(&got, want, "slice {slice} inst {k}");
        }
    }
    assert!(
        cur.at_slice(trace.slices().len()).is_err(),
        "out-of-range slice must be rejected"
    );
}

#[test]
fn seek_lands_mid_slice_and_agrees_with_sequential_decode() {
    let w = wl("lucas");
    let trace = Arc::new(capture(&w, 10_000, 1_000).expect("encodable"));
    let all = decode_all(&trace, &w).expect("decodes");
    let mut cur = ReplayCursor::new(Arc::clone(&trace), &w).expect("source matches");
    // Positions straddling slice boundaries, out of order, including 0 and
    // the very last instruction.
    for pos in [4_321usize, 0, 999, 1_000, 7_700, 9_999, 2_500] {
        cur.seek(pos as u64).expect("in range");
        assert_eq!(cur.read(), pos as u64);
        let got = cur.try_next().expect("decodes");
        assert_eq!(got, all[pos], "seek({pos})");
    }
    assert_eq!(
        cur.seek(10_000),
        Err(TraceError::TooShort {
            captured: 10_000,
            requested: 10_001
        })
    );

    // StreamSource::skip routes through the same machinery and must agree
    // with a live engine skipped the slow way.
    let mut replay = parrot_workloads::StreamSource::replay(Arc::clone(&trace), &w)
        .expect("source matches");
    let mut live = parrot_workloads::StreamSource::live(&w);
    replay.skip(6_400).expect("in range");
    live.skip(6_400).expect("live skip is infallible");
    for k in 0..200 {
        assert_eq!(replay.next_inst(), live.next_inst(), "inst {k} after skip");
    }
}

#[test]
fn replay_past_capture_end_is_a_structured_error() {
    let w = wl("art");
    let trace = Arc::new(capture(&w, 1_000, 256).expect("encodable"));
    let mut cur = ReplayCursor::new(Arc::clone(&trace), &w).expect("source matches");
    for _ in 0..1_000 {
        cur.try_next().expect("within capture");
    }
    assert_eq!(
        cur.try_next(),
        Err(TraceError::TooShort {
            captured: 1_000,
            requested: 1_001
        })
    );
}

#[test]
fn rejects_bad_magic() {
    let w = wl("gzip");
    let mut bytes = capture(&w, 2_000, 512).expect("encodable").bytes().to_vec();
    bytes[0] ^= 0xFF;
    assert_eq!(TraceFile::parse(bytes).unwrap_err(), TraceError::BadMagic);
    // A totally foreign file is BadMagic too, once it is long enough.
    assert_eq!(
        TraceFile::parse(vec![0u8; 4 * HEADER_LEN]).unwrap_err(),
        TraceError::BadMagic
    );
}

#[test]
fn rejects_future_version() {
    let w = wl("gzip");
    let mut bytes = capture(&w, 2_000, 512).expect("encodable").bytes().to_vec();
    let future = (FORMAT_VERSION + 1).to_le_bytes();
    bytes[0x08..0x0C].copy_from_slice(&future);
    assert_eq!(
        TraceFile::parse(bytes).unwrap_err(),
        TraceError::UnsupportedVersion {
            found: FORMAT_VERSION + 1
        }
    );
}

#[test]
fn rejects_truncation_at_every_boundary() {
    let w = wl("gzip");
    let bytes = capture(&w, 2_000, 512).expect("encodable").bytes().to_vec();
    // Shorter than a header at all.
    match TraceFile::parse(bytes[..HEADER_LEN / 2].to_vec()).unwrap_err() {
        TraceError::Truncated { actual, .. } => assert_eq!(actual, HEADER_LEN / 2),
        e => panic!("expected Truncated, got {e:?}"),
    }
    // Valid header, body cut off.
    match TraceFile::parse(bytes[..bytes.len() - 40].to_vec()).unwrap_err() {
        TraceError::Truncated { expected, actual } => {
            assert_eq!(expected, bytes.len());
            assert_eq!(actual, bytes.len() - 40);
        }
        e => panic!("expected Truncated, got {e:?}"),
    }
    // Trailing garbage is also structural, not silently ignored.
    let mut padded = bytes.clone();
    padded.extend_from_slice(b"junk");
    assert!(matches!(
        TraceFile::parse(padded).unwrap_err(),
        TraceError::Malformed(_)
    ));
}

#[test]
fn any_flipped_payload_bit_fails_a_checksum() {
    let w = wl("crafty");
    let bytes = capture(&w, 4_000, 512).expect("encodable").bytes().to_vec();
    // Flip one bit in several file regions: header tail, payload middle,
    // index. Each must fail the whole-file or per-slice checksum.
    for off in [0x30usize, bytes.len() / 2, bytes.len() - 24] {
        let mut corrupt = bytes.clone();
        corrupt[off] ^= 0x10;
        match TraceFile::parse(corrupt).unwrap_err() {
            TraceError::ChecksumMismatch { .. } | TraceError::Malformed(_) => {}
            e => panic!("byte {off}: expected checksum/structural error, got {e:?}"),
        }
    }
}

#[test]
fn rejects_replay_against_the_wrong_workload() {
    let gcc = wl("gcc");
    let twolf = wl("twolf");
    let trace = Arc::new(capture(&gcc, 2_000, 512).expect("encodable"));
    assert!(matches!(
        trace.check_source(&twolf),
        Err(TraceError::SourceMismatch { .. })
    ));
    assert!(matches!(
        ReplayCursor::new(Arc::clone(&trace), &twolf),
        Err(TraceError::SourceMismatch { .. })
    ));
    assert!(trace.check_source(&gcc).is_ok());
}

#[test]
fn magic_is_the_documented_constant() {
    // DESIGN.md §16.1 pins these exact bytes; a drift here is a spec break.
    assert_eq!(&MAGIC, b"PRTRACE\0");
    let w = wl("gcc");
    let trace = capture(&w, 1_000, 512).expect("encodable");
    assert_eq!(&trace.bytes()[..8], b"PRTRACE\0");
    assert_eq!(&trace.bytes()[trace.bytes().len() - 8..], b"PTRCEND\0");
}

//! Build a *custom* synthetic application from scratch and measure how its
//! character steers the PARROT machine: the same knobs the 39 registered
//! stand-ins use are public API.
//!
//! We construct two custom apps — a regular streaming kernel and an
//! irregular pointer-chaser — and watch coverage, misprediction and the
//! PARROT payoff move exactly as the paper's hot/cold premise predicts.
//!
//! Run with: `cargo run --release -p parrot-examples --bin custom_workload`

use parrot_core::{Model, SimRequest};
use parrot_workloads::{AppProfile, Suite, Workload};

fn measure(label: &str, profile: &AppProfile) {
    let wl = Workload::build(profile);
    let n = SimRequest::model(Model::N).insts(150_000).run(&wl);
    let ton = SimRequest::model(Model::TON).insts(150_000).run(&wl);
    let t = ton.trace.as_ref().expect("trace report");
    println!("== {label} ==");
    println!(
        "  N IPC {:.3}   TON IPC {:.3}  ({:+.1}%)",
        n.ipc(),
        ton.ipc(),
        (ton.ipc() / n.ipc() - 1.0) * 100.0
    );
    println!(
        "  coverage {:.1}%   trace mispredict {:.2}%   branch mispredict (N) {:.2}%",
        t.coverage * 100.0,
        t.trace_mispredict_rate() * 100.0,
        n.branch_mispredict_rate() * 100.0
    );
    println!(
        "  energy vs N {:+.1}%\n",
        (ton.energy / n.energy - 1.0) * 100.0
    );
}

fn main() {
    // A regular streaming kernel: long predictable loops over arrays,
    // SIMD-friendly bodies, a tightly skewed hot set.
    let mut streaming = AppProfile::suite_base(Suite::SpecFp);
    streaming.name = "my-streaming-kernel";
    streaming.seed = 0xfeed_0001;
    streaming.num_funcs = 6;
    streaming.loop_frac = 0.6;
    streaming.trip_mean = 96.0;
    streaming.trip_jitter = 0.05;
    streaming.branch_bias = 0.985;
    streaming.stride_frac = 0.95;
    streaming.simd_frac = 0.7;
    streaming.zipf_theta = 1.8;
    streaming.data_kb = 96; // cache-resident: compute-bound, not memory-bound

    // An irregular pointer-chaser: flat call distribution, weakly biased
    // branches, random accesses over a large working set.
    let mut chaser = AppProfile::suite_base(Suite::SpecInt);
    chaser.name = "my-pointer-chaser";
    chaser.seed = 0xfeed_0002;
    chaser.num_funcs = 40;
    chaser.loop_frac = 0.15;
    chaser.trip_mean = 4.0;
    chaser.trip_jitter = 0.7;
    chaser.branch_bias = 0.8;
    chaser.periodic_frac = 0.1;
    chaser.stride_frac = 0.1;
    chaser.data_kb = 2048;
    chaser.zipf_theta = 0.5;

    measure("streaming kernel (regular, hot)", &streaming);
    measure("pointer chaser (irregular, flat)", &chaser);

    println!("the hot/cold premise in action: the regular kernel is nearly fully");
    println!("covered by optimized traces and gains substantially, while the");
    println!("irregular chaser stays mostly cold — PARROT spends nothing on it.");
}

//! Design-space exploration under a power budget — the study's motivating
//! scenario (§1): given an energy envelope, which microarchitecture
//! delivers the most performance?
//!
//! Sweeps all seven machine models over a mixed application set, prints
//! the IPC/energy landscape, and answers the paper's two design questions:
//! the best machine for a constrained budget, and the best machine when
//! power is plentiful.
//!
//! Run with: `cargo run --release -p parrot-examples --bin design_space`

use parrot_core::{Model, SimRequest};
use parrot_energy::metrics::geo_mean;
use parrot_workloads::{app_by_name, Workload};

fn main() {
    let apps = ["gzip", "swim", "flash", "word", "dotnet-num1"];
    let insts = 120_000;
    let workloads: Vec<Workload> = apps
        .iter()
        .map(|a| Workload::build(&app_by_name(a).expect("app")))
        .collect();

    println!(
        "sweeping {} models x {} applications ({} insts each)...\n",
        Model::ALL.len(),
        apps.len(),
        insts
    );
    let mut rows = Vec::new();
    for m in Model::ALL {
        let req = SimRequest::model(m).insts(insts);
        let runs: Vec<_> = workloads.iter().map(|wl| req.run(wl)).collect();
        let ipc = geo_mean(&runs.iter().map(|r| r.ipc()).collect::<Vec<_>>());
        let energy = geo_mean(&runs.iter().map(|r| r.energy).collect::<Vec<_>>());
        rows.push((m, ipc, energy));
    }

    let base_energy = rows.iter().find(|(m, _, _)| *m == Model::N).expect("N").2;
    println!(
        "{:<8}{:>10}{:>14}{:>16}",
        "model", "IPC", "rel. energy", "IPC per energy"
    );
    for (m, ipc, energy) in &rows {
        println!(
            "{:<8}{:>10.3}{:>13.2}x{:>16.3}",
            m.name(),
            ipc,
            energy / base_energy,
            ipc / (energy / base_energy)
        );
    }

    // Question 1: power-limited design (≤ 1.15x the narrow machine budget).
    let budget = 1.15 * base_energy;
    let constrained = rows
        .iter()
        .filter(|(_, _, e)| *e <= budget)
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("some model fits");
    println!(
        "\nbest under a constrained budget (<=1.15x N): {} ({:.3} IPC)",
        constrained.0, constrained.1
    );

    // Question 2: performance-first design.
    let fastest = rows
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("nonempty");
    println!(
        "fastest regardless of budget:               {} ({:.3} IPC)",
        fastest.0, fastest.1
    );
}

//! Hot/cold anatomy of one application: how the promotion pipeline
//! (selection → hot filter → construction → blazing filter → optimization)
//! carves the dynamic stream, and how the hot and cold halves behave.
//!
//! Run with: `cargo run --release -p parrot-examples --bin hot_cold [app]`

use parrot_core::{Model, SimRequest};
use parrot_workloads::{app_by_name, Workload};

fn main() {
    let app = std::env::args().nth(1).unwrap_or_else(|| "gcc".to_string());
    let profile = app_by_name(&app).unwrap_or_else(|| {
        eprintln!("unknown app '{app}'; try one of:");
        for a in parrot_workloads::all_apps() {
            eprintln!("  {} ({})", a.name, a.suite);
        }
        std::process::exit(1);
    });

    let wl = Workload::build(&profile);
    let r = SimRequest::model(Model::TON).insts(250_000).run(&wl);
    let t = r.trace.as_ref().expect("TON reports trace statistics");

    println!("== {} ({}) on TON ==\n", profile.name, profile.suite);
    println!("committed instructions   {}", r.insts);
    println!(
        "  executed hot           {} ({:.1}% coverage)",
        t.hot_insts,
        t.coverage * 100.0
    );
    println!("  executed cold          {}", t.cold_insts);
    println!();
    println!("trace promotion pipeline:");
    println!("  frames constructed     {}", t.constructed);
    println!("  hot entries            {}", t.entries);
    println!(
        "  aborts (divergence)    {} ({:.2}% of resolved)",
        t.aborts,
        t.trace_mispredict_rate() * 100.0
    );
    println!("  trace-cache evictions  {}", t.tc_evictions);
    if let Some(o) = &t.opt {
        println!();
        println!("blazing-trace optimization:");
        println!("  traces optimized       {}", o.traces);
        println!("  uop reduction          {:.1}%", o.uop_reduction * 100.0);
        println!("  dep-path reduction     {:.1}%", o.dep_reduction * 100.0);
        println!("  fused pairs            {}", o.fused);
        println!("  SIMD lanes packed      {}", o.simd_lanes);
        println!("  dead uops removed      {}", o.removed_dead);
        println!("  constants folded       {}", o.folded);
        println!(
            "  mean reuse per trace   {:.0} executions",
            t.mean_opt_reuse
        );
    }
    println!();
    println!("predictability (Fig 4.7 anatomy):");
    println!(
        "  residual cold-branch mispredict  {:.2}%",
        r.branch_mispredict_rate() * 100.0
    );
    println!(
        "  hot-trace mispredict             {:.2}%",
        t.trace_mispredict_rate() * 100.0
    );
    println!();
    println!("the hot subsystem covers the regular majority; the cold residue");
    println!("is the irregular part — its branch mispredict rate is naturally");
    println!("higher than the whole-program average.");
}

//! # parrot-examples
//!
//! Runnable demonstrations of the PARROT reproduction's public API. Each
//! binary is a self-contained scenario:
//!
//! * `quickstart` — one application, baseline vs PARROT, the three §3.5
//!   metrics;
//! * `design_space` — the paper's motivating question: best machine under
//!   a power budget vs best machine outright;
//! * `hot_cold` — anatomy of the promotion pipeline on one application
//!   (pass an app name as the first argument);
//! * `optimizer_lab` — capture a real trace, optimize it, print the uop
//!   listing before/after and verify functional equivalence;
//! * `custom_workload` — build applications from scratch with
//!   [`parrot_workloads::AppProfile`] and watch the hot/cold premise act.
//!
//! Run any of them with
//! `cargo run --release -p parrot-examples --bin <name>`.

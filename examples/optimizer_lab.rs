//! Optimizer laboratory: capture a real trace from an application stream,
//! run the dynamic optimizer on it, print the uop listing before and after,
//! and verify functional equivalence by deterministic replay.
//!
//! Run with: `cargo run --release -p parrot-examples --bin optimizer_lab`

use parrot_opt::verify::check_equivalent_multi;
use parrot_opt::{Optimizer, OptimizerConfig};
use parrot_trace::{construct_frame, SelectionConfig, TraceSelector};
use parrot_workloads::{app_by_name, ExecutionEngine, Workload};

fn main() {
    let wl = Workload::build(&app_by_name("wupwise").expect("app"));

    // Collect trace candidates from the committed stream.
    let mut selector = TraceSelector::new(SelectionConfig::default());
    let mut cands = Vec::new();
    for (seq, d) in ExecutionEngine::new(&wl.program).take(60_000).enumerate() {
        let kind = wl.program.inst(d.inst).kind;
        selector.step(&d, &kind, seq as u64, &mut cands);
    }
    selector.flush(&mut cands);

    // Pick a juicy candidate: unrolled (joined) with a decent uop count.
    let cand = cands
        .iter()
        .filter(|c| c.joins >= 2)
        .max_by_key(|c| c.num_uops)
        .or_else(|| cands.iter().max_by_key(|c| c.num_uops))
        .expect("stream produced candidates");
    let mut frame = construct_frame(cand, &wl.decoded);
    let original = frame.uops.clone();

    println!(
        "trace {} ({} insts, {} units joined)\n",
        frame.tid, frame.num_insts, frame.joins
    );
    println!("-- before optimization: {} uops --", original.len());
    for (i, u) in original.iter().enumerate() {
        println!("  {i:>2}: {u}");
    }

    let mut optimizer = Optimizer::new(OptimizerConfig::full());
    let outcome = optimizer.optimize(&mut frame, 0);

    println!("\n-- after optimization: {} uops --", frame.uops.len());
    for (i, u) in frame.uops.iter().enumerate() {
        println!("  {i:>2}: {u}");
    }
    println!();
    println!(
        "uops {} -> {} ({:.0}% reduction); critical path {} -> {} cycles",
        outcome.uops_before,
        outcome.uops_after,
        (1.0 - outcome.uops_after as f64 / outcome.uops_before as f64) * 100.0,
        outcome.dep_before,
        outcome.dep_after
    );
    println!(
        "pass activity: {} renamed, {} folded, {} simplified, {} dead removed, {} fused, {} SIMD lanes",
        outcome.passes.renamed_defs,
        outcome.passes.folded,
        outcome.passes.simplified,
        outcome.passes.removed_dead,
        outcome.passes.fused,
        outcome.passes.simd_lanes
    );

    // Prove it: replay both versions from many random entry states.
    let seeds: Vec<u64> = (0..32).map(|i| 0x5eed + i * 7919).collect();
    match check_equivalent_multi(&original, &frame.uops, &frame.mem_addrs, &seeds) {
        Ok(()) => println!(
            "\nfunctional equivalence verified over {} random entry states ✓",
            seeds.len()
        ),
        Err(e) => panic!("optimizer broke the trace: {e}"),
    }
}

//! Quickstart: build a synthetic application, simulate it on the baseline
//! 4-wide machine and on the PARROT machine of the same width, and compare
//! performance, energy and power awareness.
//!
//! Run with: `cargo run --release -p parrot-examples --bin quickstart`

use parrot_core::{Model, SimRequest};
use parrot_energy::metrics::cmpw_relative;
use parrot_workloads::{app_by_name, Workload};

fn main() {
    // Pick any of the 44 registered stand-in applications.
    let profile = app_by_name("perlbench").expect("registered application");
    println!("application: {} ({})", profile.name, profile.suite);

    // Generate its synthetic program once; every model replays the same
    // committed instruction stream.
    let workload = Workload::build(&profile);
    println!(
        "program: {} static instructions, {} functions\n",
        workload.program.num_insts(),
        workload.program.funcs.len()
    );

    let insts = 200_000;
    let baseline = SimRequest::model(Model::N).insts(insts).run(&workload);
    let parrot = SimRequest::model(Model::TON).insts(insts).run(&workload);

    println!("{:<28}{:>12}{:>12}", "", "N (base)", "TON (PARROT)");
    println!(
        "{:<28}{:>12.3}{:>12.3}",
        "IPC",
        baseline.ipc(),
        parrot.ipc()
    );
    println!(
        "{:<28}{:>12.0}{:>12.0}",
        "energy (units)", baseline.energy, parrot.energy
    );
    println!(
        "{:<28}{:>12}{:>12.1}%",
        "trace-cache coverage",
        "-",
        parrot
            .trace
            .as_ref()
            .map(|t| t.coverage * 100.0)
            .unwrap_or(0.0)
    );
    if let Some(opt) = parrot.trace.as_ref().and_then(|t| t.opt.as_ref()) {
        println!(
            "{:<28}{:>12}{:>12.1}%",
            "dynamic uop reduction",
            "-",
            opt.uop_reduction * 100.0
        );
    }
    let speedup = parrot.ipc() / baseline.ipc();
    let energy = parrot.energy / baseline.energy;
    let cmpw = cmpw_relative(&baseline.summary(), &parrot.summary());
    println!();
    println!("speedup            {:+.1}%", (speedup - 1.0) * 100.0);
    println!("energy             {:+.1}%", (energy - 1.0) * 100.0);
    println!(
        "power awareness    {:+.1}% (cubic-MIPS-per-WATT)",
        (cmpw - 1.0) * 100.0
    );
}

//! Shared helpers for PARROT integration tests.

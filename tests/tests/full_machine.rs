//! Cross-crate integration tests: whole-machine simulations asserting the
//! ordering relations the paper establishes in §4, on small instruction
//! budgets so the suite stays fast.

use parrot_core::{Model, SimReport, SimRequest};
use parrot_workloads::{app_by_name, Workload};

const BUDGET: u64 = 60_000;

fn run(model: Model, app: &str) -> SimReport {
    let wl = Workload::build(&app_by_name(app).expect("registered app"));
    SimRequest::model(model).insts(BUDGET).run(&wl)
}

#[test]
fn every_model_commits_the_full_budget() {
    let wl = Workload::build(&app_by_name("gzip").expect("app"));
    for m in Model::ALL {
        let r = SimRequest::model(m).insts(20_000).run(&wl);
        assert_eq!(r.insts, 20_000, "{m}: all instructions must commit");
        assert!(r.cycles > 0 && r.energy > 0.0, "{m}");
        assert!(r.uops >= r.insts, "{m}: at least one uop per instruction");
    }
}

#[test]
fn simulation_is_deterministic() {
    let wl = Workload::build(&app_by_name("twolf").expect("app"));
    let a = SimRequest::model(Model::TON).insts(30_000).run(&wl);
    let b = SimRequest::model(Model::TON).insts(30_000).run(&wl);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.energy, b.energy);
    assert_eq!(a.uops, b.uops);
}

#[test]
fn wide_machine_is_faster_but_hungrier() {
    for app in ["swim", "word"] {
        let n = run(Model::N, app);
        let w = run(Model::W, app);
        assert!(w.ipc() > n.ipc(), "{app}: W must outrun N");
        assert!(
            w.energy > 1.3 * n.energy,
            "{app}: W must cost much more energy"
        );
    }
}

#[test]
fn parrot_beats_its_same_width_baseline() {
    for app in ["swim", "perlbench"] {
        let n = run(Model::N, app);
        let ton = run(Model::TON, app);
        assert!(
            ton.ipc() > 1.05 * n.ipc(),
            "{app}: TON {:.3} must clearly beat N {:.3}",
            ton.ipc(),
            n.ipc()
        );
        let w = run(Model::W, app);
        let tow = run(Model::TOW, app);
        assert!(
            tow.ipc() > 1.05 * w.ipc(),
            "{app}: TOW {:.3} must clearly beat W {:.3}",
            tow.ipc(),
            w.ipc()
        );
    }
}

#[test]
fn ton_is_drastically_more_power_aware_than_widening() {
    // The headline §1 claim at app granularity: TON reaches W-class
    // performance at far lower energy, so its CMPW dominates.
    use parrot_energy::metrics::cmpw_relative;
    for app in ["swim", "flash", "wupwise"] {
        let w = run(Model::W, app);
        let ton = run(Model::TON, app);
        assert!(
            ton.energy < 0.8 * w.energy,
            "{app}: TON energy must undercut W"
        );
        let rel = cmpw_relative(&w.summary(), &ton.summary());
        assert!(rel > 1.08, "{app}: TON CMPW vs W = {rel:.2}");
    }
}

#[test]
fn coverage_tracks_regularity() {
    let fp = run(Model::TON, "swim")
        .trace
        .expect("trace report")
        .coverage;
    let int = run(Model::TON, "gcc").trace.expect("trace report").coverage;
    assert!(fp > 0.7, "swim coverage {fp:.2}");
    assert!(int > 0.25, "gcc coverage {int:.2}");
    assert!(fp > int, "SpecFP must out-cover SpecInt");
}

#[test]
fn hot_traces_predict_better_than_cold_branches() {
    // Fig 4.7's split on a per-app basis.
    let r = run(Model::TON, "gzip");
    let t = r.trace.as_ref().expect("trace report");
    assert!(
        t.trace_mispredict_rate() < r.branch_mispredict_rate(),
        "trace mispredict {:.3} must be below residual cold branch mispredict {:.3}",
        t.trace_mispredict_rate(),
        r.branch_mispredict_rate()
    );
}

#[test]
fn optimizer_reduces_uops_dynamically() {
    let tn = run(Model::TN, "flash");
    let ton = run(Model::TON, "flash");
    // Same committed instructions, fewer committed uops (optimized traces).
    assert_eq!(tn.insts, ton.insts);
    assert!(
        ton.uops < tn.uops,
        "TON uops {} must undercut TN {} (dynamic uop reduction)",
        ton.uops,
        tn.uops
    );
    let opt = ton
        .trace
        .as_ref()
        .and_then(|t| t.opt.as_ref())
        .expect("opt report");
    assert!(opt.traces > 0, "blazing traces must be optimized");
    assert!(opt.uop_reduction > 0.05);
}

#[test]
fn optimized_trace_reuse_amortizes_the_optimizer() {
    let r = run(Model::TON, "swim");
    let t = r.trace.expect("trace report");
    assert!(
        t.mean_opt_reuse > 20.0,
        "swim optimized traces must be reused heavily, got {:.1}",
        t.mean_opt_reuse
    );
}

#[test]
fn split_machine_runs_and_reports() {
    let r = run(Model::TOS, "excel");
    assert_eq!(r.insts, BUDGET);
    assert!(r.trace.is_some());
    // The split machine carries two cores' area: biggest energy of the zoo
    // on equal work is plausible but not asserted; just sanity.
    assert!(r.energy > 0.0);
}

#[test]
fn reference_models_have_no_trace_report() {
    assert!(run(Model::N, "gap").trace.is_none());
    assert!(run(Model::W, "gap").trace.is_none());
}

#[test]
fn energy_breakdown_is_complete() {
    let r = run(Model::TON, "art");
    let sum: f64 = r.energy_by_unit.iter().map(|(_, e)| e).sum();
    assert!(
        (sum - r.energy).abs() < 1e-6 * r.energy,
        "unit energies must sum to total"
    );
    assert!(r.unit_share("leakage") > 0.05);
    assert!(r.unit_share("decode") > 0.01);
}

//! End-to-end telemetry reconciliation: install the thread-local sinks, run
//! a fixed-seed simulation on this thread, and check that (a) the final
//! metrics JSONL row equals the run's `TraceReport` counters exactly, (b)
//! the Chrome trace parses back and contains the expected span/instant
//! families, and (c) the profiler saw the instrumented sections.

use parrot_core::{Model, SimReport, SimRequest};
use parrot_telemetry::json::parse;
use parrot_telemetry::{metrics, profile, trace};
use parrot_workloads::{app_by_name, Workload};

const BUDGET: u64 = 60_000;

fn run_instrumented(app: &str) -> SimReport {
    let wl = Workload::build(&app_by_name(app).expect("registered app"));
    SimRequest::model(Model::TON).insts(BUDGET).run(&wl)
}

#[test]
fn final_metrics_row_reconciles_with_trace_report() {
    let _ = metrics::take();
    metrics::install(metrics::MetricsHub::new(10_000));
    let r = run_instrumented("gzip");
    let hub = metrics::take().expect("hub survives the run");
    assert!(hub.rows() >= 2, "periodic snapshots plus the final one");

    let jsonl = hub.to_jsonl();
    let last = jsonl.lines().last().expect("at least one row");
    let row = parse(last).expect("final row is valid JSON");
    let t = r.trace.as_ref().expect("TON produces a trace report");
    let counter = |name: &str| row.get(name).as_u64().unwrap_or_else(|| panic!("{name}"));

    assert_eq!(counter("trace_entries"), t.entries);
    assert_eq!(counter("trace_aborts"), t.aborts);
    assert_eq!(counter("tc_hits"), t.tc_hits);
    assert_eq!(counter("tc_lookups"), t.tc_lookups);
    assert_eq!(counter("tc_evictions"), t.tc_evictions);
    assert_eq!(counter("trace_constructed"), t.constructed);
    assert_eq!(counter("hot_insts"), t.hot_insts);
    assert_eq!(counter("cold_insts"), t.cold_insts);
    assert_eq!(counter("insts"), r.insts);
    assert_eq!(counter("cycles"), r.cycles);

    // Every row must be independently parseable (the JSONL contract).
    for line in jsonl.lines() {
        assert!(parse(line).is_ok(), "unparseable JSONL row: {line}");
    }
}

#[test]
fn chrome_trace_has_expected_event_families() {
    let _ = trace::take();
    trace::install(trace::Tracer::new(1 << 18));
    let r = run_instrumented("swim");
    let tr = trace::take().expect("tracer survives the run");
    let t = r.trace.as_ref().expect("trace report");
    assert!(
        t.entries > 0 && t.aborts > 0,
        "workload must exercise entry and abort paths"
    );

    let doc = parse(&tr.to_chrome_json()).expect("valid Chrome trace JSON");
    let events = doc.get("traceEvents").as_arr().expect("traceEvents array");
    assert!(!events.is_empty());

    let names: std::collections::BTreeSet<&str> = events
        .iter()
        .filter_map(|e| e.get("name").as_str())
        .collect();
    for expected in [
        "cold",
        "hot",
        "trace.entry",
        "trace.abort",
        "trace.construct",
        "filter.promote",
        "tc.insert",
        "opt.job",
    ] {
        assert!(
            names.contains(expected),
            "missing event family {expected:?}; have {names:?}"
        );
    }

    // Phase spans are complete events with a duration; instants are "i".
    for e in events {
        let ph = e.get("ph").as_str().expect("ph field");
        match ph {
            "X" => assert!(e.get("dur").as_u64().is_some(), "X needs dur"),
            "i" | "M" | "C" => {}
            other => panic!("unexpected phase letter {other:?}"),
        }
    }
}

#[test]
fn split_core_model_emits_core_switch_instants() {
    let _ = trace::take();
    trace::install(trace::Tracer::new(1 << 16));
    let wl = Workload::build(&app_by_name("gzip").expect("registered app"));
    let _ = SimRequest::model(Model::TOS).insts(BUDGET).run(&wl);
    let tr = trace::take().expect("tracer survives the run");
    let doc = parse(&tr.to_chrome_json()).expect("valid Chrome trace JSON");
    let events = doc.get("traceEvents").as_arr().expect("traceEvents array");
    let switches = events
        .iter()
        .filter(|e| e.get("name").as_str() == Some("core.switch"))
        .count();
    assert!(
        switches > 0,
        "TOS drain-based switching must surface as core.switch instants"
    );
}

#[test]
fn fault_counters_reconcile_in_the_metrics_jsonl() {
    use parrot_core::{FaultKind, FaultPlan};
    let _ = metrics::take();
    metrics::install(metrics::MetricsHub::new(10_000));
    let wl = Workload::build(&app_by_name("swim").expect("registered app"));
    let r = SimRequest::model(Model::TOW)
        .insts(BUDGET)
        .faults(FaultPlan::new(0xC0DE).rate(0.3))
        .run(&wl);
    let hub = metrics::take().expect("hub survives the run");
    let last = hub.to_jsonl().lines().last().expect("rows").to_string();
    let row = parse(&last).expect("final row parses");
    let fr = r.faults.as_ref().expect("fault report");

    let counter = |name: &str| row.get(name).as_u64().unwrap_or(0);
    let mut injected_total = 0;
    for k in FaultKind::ALL {
        let (i, c, b) = (
            counter(k.injected_counter()),
            counter(k.caught_counter()),
            counter(k.benign_counter()),
        );
        assert_eq!(i, c + b, "{}: injected == caught + benign", k.name());
        assert_eq!(
            i,
            fr.counters.injected[k as usize],
            "{} vs report",
            k.name()
        );
        injected_total += i;
    }
    assert!(injected_total > 0, "the campaign must land faults");
    assert_eq!(counter("fault:demoted"), fr.counters.demoted);
    assert_eq!(counter("fault:fellback"), fr.counters.fellback);
}

#[test]
fn profiler_records_instrumented_sections() {
    let _ = profile::take();
    profile::install(profile::Profiler::new());
    let _ = run_instrumented("swim");
    let p = profile::take().expect("profiler survives the run");
    for section in ["machine.run", "trace.construct", "opt.optimize"] {
        let (calls, total, _self_t) = p.section(section).unwrap_or_else(|| panic!("{section}"));
        assert!(calls > 0, "{section} never entered");
        assert!(total.as_nanos() > 0, "{section} accumulated no time");
    }
    let report = p.report();
    assert!(
        report.contains("machine.run"),
        "report lists sections:\n{report}"
    );
}
